"""Harness-facing capture sink behind ``--trace-out``/``--metrics-json``/
``--telemetry-out``.

Benchmark entry points are several layers below the CLI (experiment ->
series -> ``run_training_benchmark``), and one harness invocation may
execute many benchmark configurations.  Rather than thread output
paths through every signature, the CLI configures a module-level sink
(the same pattern as ``CommConfig`` in ``distributed/runner.py``);
each traced run registers itself with a label, and ``flush_capture``
finalizes the outputs at the end.

The Chrome trace is **streamed**: the sink opens the file on the first
registered run and appends events run by run (runs separated into
disjoint pid ranges), so the merged trace never lives in memory; an
event cap (``trace_event_cap``) bounds the file with an explicit
truncation marker.  The telemetry sink collects each run's bounded
time-series summary plus its incident log — O(hosts + links) per run,
never O(events).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .chrome_trace import ChromeTraceStream
from .stall import build_stall_report
from .tracer import Tracer

_PID_STRIDE = 100  # max hosts per run in the merged trace

#: default cap on complete span events across a merged capture file
DEFAULT_TRACE_EVENT_CAP = 1_000_000

_trace_out: Optional[str] = None
_metrics_json: Optional[str] = None
_telemetry_out: Optional[str] = None
_trace_event_cap: Optional[int] = DEFAULT_TRACE_EVENT_CAP
_stream: Optional[ChromeTraceStream] = None
_runs: List[Dict[str, object]] = []
_telemetry_runs: List[Dict[str, object]] = []


def configure_capture(trace_out: Optional[str] = None,
                      metrics_json: Optional[str] = None,
                      telemetry_out: Optional[str] = None,
                      trace_event_cap: Optional[int] =
                      DEFAULT_TRACE_EVENT_CAP) -> None:
    """Set (or clear) the output paths; resets any buffered runs."""
    global _trace_out, _metrics_json, _telemetry_out, _trace_event_cap
    global _stream
    if _stream is not None:
        _stream.close()
        _stream = None
    _trace_out = trace_out
    _metrics_json = metrics_json
    _telemetry_out = telemetry_out
    _trace_event_cap = trace_event_cap
    _runs.clear()
    _telemetry_runs.clear()


def capture_enabled() -> bool:
    """True when some output path is configured — runs should trace."""
    return (_trace_out is not None or _metrics_json is not None
            or _telemetry_out is not None)


def telemetry_enabled() -> bool:
    """True when the telemetry summary sink is configured."""
    return _telemetry_out is not None


def capture_run(label: str, tracer: Tracer,
                meta: Optional[Dict[str, object]] = None,
                incidents: Optional[List[Dict[str, object]]] = None) -> None:
    """Register one traced run's spans/metrics/telemetry under ``label``."""
    global _stream
    if not capture_enabled():
        return
    run_index = len(_runs)
    if _trace_out is not None:
        if _stream is None:
            _stream = ChromeTraceStream(_trace_out,
                                        max_events=_trace_event_cap)
        _stream.add_run(tracer, pid_base=1 + run_index * _PID_STRIDE,
                        label=label)
    entry: Dict[str, object] = {
        "label": label,
        "metrics": tracer.metrics.to_dict(),
        "stall": build_stall_report(tracer).to_dict(),
        "span_counts": tracer.categories(),
    }
    if tracer.budget is not None:
        entry["dropped_spans"] = tracer.dropped_spans
    if meta:
        entry["meta"] = dict(meta)
    _runs.append(entry)
    if _telemetry_out is not None:
        summary: Dict[str, object] = {
            "label": label,
            "spans_retained": len(tracer.spans),
            "spans_dropped": tracer.dropped_spans,
            "incidents": list(incidents or []),
        }
        if tracer.telemetry is not None:
            summary["telemetry"] = tracer.telemetry.to_dict()
        if meta:
            summary["meta"] = dict(meta)
        _telemetry_runs.append(summary)


def flush_capture() -> Dict[str, str]:
    """Write the configured files; returns {kind: path} for what was written."""
    global _stream
    written: Dict[str, str] = {}
    if _trace_out is not None:
        if _stream is None:  # no traced run registered: valid empty trace
            _stream = ChromeTraceStream(_trace_out,
                                        max_events=_trace_event_cap)
        _stream.close()
        _stream = None
        written["trace"] = _trace_out
    if _metrics_json is not None:
        with open(_metrics_json, "w") as handle:
            json.dump({"runs": _runs}, handle, indent=2)
        written["metrics"] = _metrics_json
    if _telemetry_out is not None:
        incident_total = sum(len(run["incidents"])
                             for run in _telemetry_runs)
        with open(_telemetry_out, "w") as handle:
            json.dump({"runs": _telemetry_runs,
                       "incident_total": incident_total}, handle, indent=2)
        written["telemetry"] = _telemetry_out
    return written


def reset_capture() -> None:
    """Clear configuration and buffers (used by tests)."""
    configure_capture(None, None, None)
