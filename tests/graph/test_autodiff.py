"""Tests for reverse-mode autodiff: gradient graphs vs numerics."""

import numpy as np
import pytest

from repro.graph import (GraphBuilder, GraphError, Session, gradients,
                         minimize)
from repro.simnet import Cluster


def run(builder, fetches, feeds):
    cluster = Cluster(1)
    graph = builder.finalize()
    devices = {n.device or "device0" for n in graph}
    session = Session(cluster, graph,
                      {d: cluster.hosts[0] for d in devices})
    session.run(feeds=feeds)
    return [session.numpy(f.node.name, f.index) for f in fetches]


def numeric_gradient(fn, x, eps=1e-4):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn(x)
        x[idx] = orig - eps
        lo = fn(x)
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestAgainstNumericGradients:
    def _check(self, build_loss, x_shape, seed=0, rtol=2e-2, atol=1e-3):
        """build_loss(builder, x_output) -> scalar loss output."""
        rng = np.random.default_rng(seed)
        x_val = rng.normal(size=x_shape).astype(np.float32)

        b = GraphBuilder()
        x = b.placeholder(list(x_shape), name="x")
        loss = build_loss(b, x)
        (grad,) = gradients(b, loss, [x])
        got = run(b, [grad], {"x": x_val})[0]

        def f(values):
            b2 = GraphBuilder()
            x2 = b2.placeholder(list(x_shape), name="x")
            loss2 = build_loss(b2, x2)
            return float(run(b2, [loss2],
                             {"x": values.astype(np.float32)})[0])
        expected = numeric_gradient(f, x_val.astype(np.float64))
        np.testing.assert_allclose(got, expected, rtol=rtol, atol=atol)

    def test_sum_of_squares(self):
        self._check(lambda b, x: b.reduce_sum(b.square(x)), (3, 2))

    def test_sigmoid_chain(self):
        self._check(lambda b, x: b.reduce_sum(b.sigmoid(x)), (4,))

    def test_tanh_mean(self):
        self._check(lambda b, x: b.reduce_mean(b.tanh(x)), (5,))

    def test_matmul_loss(self):
        def build(b, x):
            w = b.constant(np.arange(6, dtype=np.float32).reshape(3, 2) / 10)
            return b.reduce_sum(b.square(b.matmul(x, w)))
        self._check(build, (2, 3))

    def test_relu_masks(self):
        self._check(lambda b, x: b.reduce_sum(b.relu(x)), (8,), atol=2e-3)

    def test_transpose_flatten_reshape(self):
        def build(b, x):
            t = b.transpose(x)
            flat = b.reshape(t, [6])
            return b.reduce_sum(b.mul(flat, flat))
        self._check(build, (2, 3))

    def test_bias_add(self):
        def build(b, x):
            bias = b.constant(np.array([0.5, -1.0], dtype=np.float32))
            return b.reduce_sum(b.square(b.bias_add(x, bias)))
        self._check(build, (3, 2))

    def test_axis_reduce(self):
        def build(b, x):
            col_sums = b.reduce_sum(x, axis=0)
            return b.reduce_sum(b.square(col_sums))
        self._check(build, (3, 4))

    def test_softmax_cross_entropy(self):
        labels_val = np.zeros((4, 3), dtype=np.float32)
        labels_val[np.arange(4), [0, 2, 1, 0]] = 1.0

        def build(b, x):
            labels = b.constant(labels_val)
            loss, _ = b.softmax_cross_entropy(x, labels)
            return loss
        self._check(build, (4, 3))


class TestMinimize:
    def test_end_to_end_training(self):
        """minimize() alone trains a two-layer network to low loss."""
        rng = np.random.default_rng(0)
        x_val = rng.normal(size=(32, 8)).astype(np.float32)
        true_w = rng.normal(size=(8, 3))
        labels_idx = (x_val @ true_w).argmax(axis=1)
        y_val = np.zeros((32, 3), dtype=np.float32)
        y_val[np.arange(32), labels_idx] = 1.0

        b = GraphBuilder()
        x = b.placeholder([32, 8], name="x")
        y = b.placeholder([32, 3], name="y")
        w1 = b.variable([8, 16], name="w1",
                        initializer=rng.normal(0, 0.4, (8, 16)))
        w2 = b.variable([16, 3], name="w2",
                        initializer=rng.normal(0, 0.4, (16, 3)))
        hidden = b.tanh(b.matmul(x, w1))
        logits = b.matmul(hidden, w2)
        loss, _ = b.softmax_cross_entropy(logits, y, name="loss")
        minimize(b, loss, lr=1.0)

        cluster = Cluster(1)
        session = Session(cluster, b.finalize(),
                          {"device0": cluster.hosts[0]})
        losses = []
        for _ in range(40):
            session.run(feeds={"x": x_val, "y": y_val})
            losses.append(float(session.numpy("loss")))
        assert losses[-1] < losses[0] * 0.35

    def test_untouched_variable_skipped(self):
        b = GraphBuilder()
        x = b.placeholder([4], name="x")
        used = b.variable([4], name="used",
                          initializer=np.ones(4, dtype=np.float32))
        b.variable([4], name="unused",
                   initializer=np.ones(4, dtype=np.float32))
        loss = b.reduce_sum(b.mul(x, used))
        updates = minimize(b, loss, lr=0.1)
        assert len(updates) == 1
        assert updates[0].node.attrs["variable"] == "used"

    def test_distributed_minimize(self):
        """Autodiff-built gradients cross servers like hand-built ones."""
        from repro.core import RdmaCommRuntime
        cluster = Cluster(2)
        rng = np.random.default_rng(3)
        b = GraphBuilder()
        x = b.placeholder([8, 4], name="x", device="worker0")
        y = b.placeholder([8, 2], name="y", device="worker0")
        w = b.variable([4, 2], name="w", device="ps0",
                       initializer=rng.normal(0, 0.3, (4, 2)))
        logits = b.matmul(x, w, device="worker0")
        loss, _ = b.softmax_cross_entropy(logits, y, name="loss",
                                          device="worker0")
        minimize(b, loss, lr=0.5)
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=RdmaCommRuntime())
        x_val = rng.normal(size=(8, 4)).astype(np.float32)
        y_val = np.zeros((8, 2), dtype=np.float32)
        y_val[:, 0] = 1.0
        losses = []
        for _ in range(15):
            session.run(feeds={"x": x_val, "y": y_val})
            losses.append(float(session.numpy("loss")))
        assert losses[-1] < losses[0] * 0.5


class TestErrors:
    def test_non_scalar_loss_rejected(self):
        b = GraphBuilder()
        x = b.placeholder([4], name="x")
        with pytest.raises(GraphError, match="scalar"):
            gradients(b, b.square(x), [x])

    def test_unsupported_op_rejected(self):
        b = GraphBuilder()
        x = b.placeholder([2, 2, 2, 1], name="x")
        pooled = b.max_pool(x, window=2)
        loss = b.reduce_sum(pooled)
        with pytest.raises(GraphError, match="no gradient registered"):
            gradients(b, loss, [x])

    def test_independent_target_returns_none(self):
        b = GraphBuilder()
        x = b.placeholder([2], name="x")
        z = b.placeholder([2], name="z")
        loss = b.reduce_sum(b.square(x))
        grads = gradients(b, loss, [x, z])
        assert grads[0] is not None
        assert grads[1] is None
