"""Integration tests: single-device graph execution (no transfers)."""

import numpy as np
import pytest

from repro.graph import (DType, GraphBuilder, Session, Shape)
from repro.simnet import Cluster


def make_session(builder, cluster=None):
    cluster = cluster or Cluster(1)
    graph = builder.finalize()
    devices = {node.device or "device0" for node in graph}
    host_map = {device: cluster.hosts[0] for device in devices}
    return Session(cluster, graph, host_map)


class TestForwardExecution:
    def test_figure1_forward(self):
        """The paper's Figure 1 network computes correct values."""
        b = GraphBuilder()
        x = b.placeholder([4, 1], name="x")
        w1 = b.variable([8, 4], name="W1",
                        initializer=np.full((8, 4), 0.1, dtype=np.float32))
        w2 = b.variable([3, 8], name="W2",
                        initializer=np.full((3, 8), 0.2, dtype=np.float32))
        h = b.sigmoid(b.matmul(w1, x), name="h")
        y = b.sigmoid(b.matmul(w2, h), name="y")
        session = make_session(b)
        x_val = np.ones((4, 1), dtype=np.float32)
        session.run(feeds={"x": x_val})
        h_expected = 1 / (1 + np.exp(-(np.full((8, 4), 0.1) @ x_val)))
        y_expected = 1 / (1 + np.exp(-(np.full((3, 8), 0.2) @ h_expected)))
        np.testing.assert_allclose(session.numpy("y"), y_expected, rtol=1e-5)

    def test_elementwise_chain(self):
        b = GraphBuilder()
        x = b.placeholder([3], name="x")
        out = b.relu(b.add(x, b.constant(np.array([-1, 0, 1],
                                                  dtype=np.float32))))
        session = make_session(b)
        session.run(feeds={"x": np.array([0.5, -2.0, 3.0], dtype=np.float32)})
        np.testing.assert_allclose(session.numpy(out.node.name),
                                   [0.0, 0.0, 4.0])

    def test_reduce_max_consumer(self):
        """The micro-benchmark's receiver op (reduce_max) works."""
        b = GraphBuilder()
        x = b.placeholder([2, 3], name="x")
        m = b.reduce_max(x, name="m")
        session = make_session(b)
        session.run(feeds={"x": np.array([[1, 5, 2], [0, 3, 4]],
                                         dtype=np.float32)})
        assert session.numpy("m") == 5.0

    def test_missing_feed_raises(self):
        b = GraphBuilder()
        b.placeholder([1], name="x")
        session = make_session(b)
        with pytest.raises(Exception, match="no feed"):
            session.run()

    def test_simulated_time_advances(self):
        b = GraphBuilder()
        x = b.placeholder([64, 64], name="x")
        y = b.matmul(x, x)
        session = make_session(b)
        stats = session.run(feeds={"x": np.eye(64, dtype=np.float32)})
        assert stats.total_time > 0
        assert session.cluster.sim.now > 0


class TestTraining:
    def test_sgd_reduces_loss(self):
        """A tiny real training loop through the graph machinery."""
        rng = np.random.default_rng(0)
        x_data = rng.normal(size=(16, 4)).astype(np.float32)
        true_w = rng.normal(size=(4, 2)).astype(np.float32)
        logits_true = x_data @ true_w
        labels = np.zeros((16, 2), dtype=np.float32)
        labels[np.arange(16), logits_true.argmax(axis=1)] = 1.0

        b = GraphBuilder()
        x = b.placeholder([16, 4], name="x")
        y = b.placeholder([16, 2], name="y")
        w = b.variable([4, 2], name="w",
                       initializer=np.zeros((4, 2), dtype=np.float32))
        logits = b.matmul(x, w, name="logits")
        loss, dlogits = b.softmax_cross_entropy(logits, y, name="loss")
        # grad_w = x^T @ dlogits — expressed with graph ops.
        xt = b.placeholder([4, 16], name="xt")
        grad_w = b.matmul(xt, dlogits, name="grad_w")
        b.apply_gradient(w, grad_w, lr=1.0, name="train")
        session = make_session(b)

        losses = []
        for _ in range(30):
            session.run(feeds={"x": x_data, "y": labels, "xt": x_data.T})
            losses.append(float(session.numpy("loss")))
        assert losses[-1] < losses[0] * 0.7

    def test_variable_persists_across_iterations(self):
        b = GraphBuilder()
        w = b.variable([2], name="w",
                       initializer=np.array([1.0, 2.0], dtype=np.float32))
        g = b.constant(np.array([1.0, 1.0], dtype=np.float32))
        b.apply_gradient(w, g, lr=0.5, name="step")
        session = make_session(b)
        session.run(iterations=4)
        np.testing.assert_allclose(session.variable("w").array,
                                   [-1.0, 0.0])

    def test_apply_gradient_is_in_place(self):
        """The output tensor of ApplyGradient shares the variable buffer
        (the in-place behaviour the dynamic tracer must see through)."""
        b = GraphBuilder()
        w = b.variable([2], name="w",
                       initializer=np.zeros(2, dtype=np.float32))
        g = b.constant(np.ones(2, dtype=np.float32))
        out = b.apply_gradient(w, g, lr=1.0, name="step")
        session = make_session(b)
        session.run()
        updated = session.value(out.node.name)
        assert updated.buffer is session.variable("w").buffer


class TestSyntheticExecution:
    def test_synthetic_charges_exact_time(self):
        b = GraphBuilder()
        b.synthetic_compute(0.005, name="gen")
        session = make_session(b)
        stats = session.run()
        assert stats.iteration_times[0] >= 0.005
        assert stats.iteration_times[0] < 0.006

    def test_virtual_tensors_flow(self):
        b = GraphBuilder()
        big = b.synthetic_compute(
            0.001, outputs=[(DType.float32, Shape([4096, 4096]))], name="gen")
        sink = b.identity(big, name="sink")
        session = make_session(b)
        session.run()
        tensor = session.value("sink")
        assert not tensor.is_dense
        assert tensor.nbytes == 4096 * 4096 * 4

    def test_stats_throughput(self):
        b = GraphBuilder()
        b.synthetic_compute(0.01, name="gen")
        session = make_session(b)
        stats = session.run(iterations=5)
        assert stats.throughput == pytest.approx(100.0, rel=0.05)
        assert len(stats.iteration_times) == 5


class _StubNode:
    def __init__(self, name, op_type="Op", priority=None):
        self.name = name
        self.op_type = op_type
        self.attrs = {} if priority is None else {"priority": priority}


class TestReadyQueue:
    """Unit tests for the executor's priority-aware ready queue."""

    def test_fifo_mode_preserves_order(self):
        from repro.graph.executor import _ReadyQueue
        nodes = [_StubNode(f"n{i}") for i in range(5)]
        queue = _ReadyQueue(nodes, priority=False)
        assert [queue.popleft().name for _ in range(5)] == [
            n.name for n in nodes]

    def test_priority_mode_is_fifo_without_priorities(self):
        from repro.graph.executor import _ReadyQueue
        nodes = [_StubNode(f"n{i}") for i in range(5)]
        queue = _ReadyQueue(nodes, priority=True)
        assert [queue.popleft().name for _ in range(5)] == [
            n.name for n in nodes]

    def test_urgent_send_jumps_ahead(self):
        from repro.graph.executor import _ReadyQueue
        compute = _StubNode("compute")
        lazy = _StubNode("lazy_send", op_type="_Send", priority=0)
        urgent = _StubNode("urgent_send", op_type="_Send", priority=7)
        queue = _ReadyQueue([compute, lazy], priority=True)
        queue.append(urgent)
        # the urgent send overtakes the earlier zero-priority send but
        # NOT compute that was already ready before it
        assert queue.popleft() is urgent
        assert queue.popleft() is compute
        assert queue.popleft() is lazy

    def test_retry_strips_urgency(self):
        from repro.graph.executor import _ReadyQueue
        urgent = _StubNode("urgent_send", op_type="_Send", priority=7)
        compute = _StubNode("compute")
        queue = _ReadyQueue(priority=True)
        queue.append(urgent, retry=True)   # a re-enqueued poll miss
        queue.append(compute)
        # retries keep plain FIFO order: no starvation, no preemption
        assert queue.popleft() is urgent
        assert queue.popleft() is compute

    def test_compute_never_reordered(self):
        from repro.graph.executor import _ReadyQueue
        nodes = [_StubNode(f"op{i}", priority=9 - i) for i in range(4)]
        queue = _ReadyQueue(nodes, priority=True)
        # priority attrs on non-_Send nodes are ignored
        assert [queue.popleft().name for _ in range(4)] == [
            n.name for n in nodes]

    def test_len_and_bool(self):
        from repro.graph.executor import _ReadyQueue
        queue = _ReadyQueue(priority=True)
        assert not queue and len(queue) == 0
        queue.append(_StubNode("a"))
        queue.append(_StubNode("s", op_type="_Send", priority=3))
        assert queue and len(queue) == 2
        members = {node.name for node in queue}
        assert members == {"a", "s"}
