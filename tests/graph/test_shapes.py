"""Unit tests for shape algebra and dtypes."""

import numpy as np
import pytest

from repro.graph.dtypes import DType
from repro.graph.shapes import Shape, ShapeError, as_shape, scalar, unknown


class TestShapeBasics:
    def test_fully_defined(self):
        assert Shape([2, 3]).is_fully_defined
        assert not Shape([2, None]).is_fully_defined

    def test_num_elements(self):
        assert Shape([4, 5, 2]).num_elements() == 40
        assert scalar().num_elements() == 1

    def test_num_elements_unknown_raises(self):
        with pytest.raises(ShapeError):
            Shape([None]).num_elements()

    def test_bad_dim_rejected(self):
        with pytest.raises(ShapeError):
            Shape([-1])
        with pytest.raises(ShapeError):
            Shape([2.5])
        with pytest.raises(ShapeError):
            Shape([True])

    def test_immutability(self):
        shape = Shape([1])
        with pytest.raises(AttributeError):
            shape.dims = (2,)

    def test_equality_with_tuples(self):
        assert Shape([1, 2]) == (1, 2)
        assert Shape([1, None]) == (1, None)

    def test_hashable(self):
        assert len({Shape([1]), Shape([1]), Shape([2])}) == 2

    def test_repr(self):
        assert repr(Shape([3, None])) == "(3, ?)"

    def test_as_shape_passthrough(self):
        shape = Shape([1])
        assert as_shape(shape) is shape
        assert as_shape([2, 2]) == Shape([2, 2])

    def test_unknown(self):
        shape = unknown(3)
        assert shape.rank == 3
        assert not shape.is_fully_defined


class TestShapeAlgebra:
    def test_merge_fills_unknowns(self):
        merged = Shape([None, 3]).merge(Shape([2, None]))
        assert merged == (2, 3)

    def test_merge_conflict(self):
        with pytest.raises(ShapeError):
            Shape([2]).merge(Shape([3]))

    def test_merge_rank_mismatch(self):
        with pytest.raises(ShapeError):
            Shape([2]).merge(Shape([2, 2]))

    def test_matmul(self):
        assert Shape([4, 8]).matmul(Shape([8, 3])) == (4, 3)

    def test_matmul_unknown_inner(self):
        assert Shape([None, 8]).matmul(Shape([8, 3])) == (None, 3)

    def test_matmul_inner_conflict(self):
        with pytest.raises(ShapeError):
            Shape([4, 8]).matmul(Shape([9, 3]))

    def test_broadcast_scalar(self):
        assert scalar().broadcast(Shape([2, 3])) == (2, 3)

    def test_broadcast_ones(self):
        assert Shape([2, 1]).broadcast(Shape([1, 5])) == (2, 5)

    def test_broadcast_incompatible(self):
        with pytest.raises(ShapeError):
            Shape([2]).broadcast(Shape([3]))

    def test_with_batch(self):
        assert Shape([10]).with_batch(32) == (32, 10)
        assert Shape([10]).with_batch(None) == (None, 10)

    def test_concat_axis(self):
        assert Shape([2, 3]).concat_axis(Shape([2, 5]), axis=1) == (2, 8)

    def test_compatible_with(self):
        assert Shape([None, 2]).compatible_with(Shape([7, 2]))
        assert not Shape([3, 2]).compatible_with(Shape([7, 2]))


class TestDType:
    def test_sizes(self):
        assert DType.float32.size == 4
        assert DType.float64.size == 8
        assert DType.uint8.size == 1

    def test_numpy_roundtrip(self):
        for member in DType:
            assert DType.from_numpy(member.np) is member

    def test_code_roundtrip(self):
        for member in DType:
            assert DType.from_code(member.code) is member

    def test_unknown_numpy_dtype(self):
        with pytest.raises(TypeError):
            DType.from_numpy(np.dtype("complex64"))

    def test_unknown_code(self):
        with pytest.raises(ValueError):
            DType.from_code(99)
