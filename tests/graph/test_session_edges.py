"""Edge cases for Session, Executor scheduling, and transfer_api."""

import numpy as np
import pytest

from repro.graph import (DType, GraphBuilder, Outcome, Session, Shape)
from repro.graph.executor import ExecutorError
from repro.graph.transfer_api import NullComm
from repro.simnet import Cluster, SimulationError


class TestSessionSetup:
    def test_missing_host_mapping_rejected(self):
        cluster = Cluster(1)
        b = GraphBuilder()
        b.placeholder([1], name="x", device="worker0")
        graph = b.finalize()
        with pytest.raises(ExecutorError, match="no host mapping"):
            Session(cluster, graph, {}, comm=NullComm())

    def test_null_comm_rejects_cross_device(self):
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([2], name="w", device="ps0",
                       initializer=np.zeros(2, dtype=np.float32))
        b.identity(w, name="out", device="worker0")
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]})
        with pytest.raises(Exception):
            session.run()

    def test_variable_requires_static_shape(self):
        cluster = Cluster(1)
        b = GraphBuilder()
        b.variable([None, 4], name="w", device="d")
        graph = b.finalize()
        with pytest.raises(ExecutorError, match="static shape"):
            Session(cluster, graph, {"d": cluster.hosts[0]})

    def test_value_lookup_missing(self):
        cluster = Cluster(1)
        b = GraphBuilder()
        b.constant(np.zeros(2, dtype=np.float32), name="c", device="d")
        session = Session(cluster, b.finalize(), {"d": cluster.hosts[0]})
        session.run()
        with pytest.raises(ExecutorError, match="no value"):
            session.value("nonexistent")
        with pytest.raises(ExecutorError, match="unknown variable"):
            session.variable("nope")


class TestExecutorScheduling:
    def _session(self, builder):
        cluster = Cluster(1)
        graph = builder.finalize()
        return Session(cluster, graph, {
            device: cluster.hosts[0]
            for device in {n.device or "device0" for n in graph}})

    def test_diamond_dependencies_execute_once_each(self):
        b = GraphBuilder()
        x = b.placeholder([2], name="x", device="d")
        left = b.square(x, name="left", device="d")
        right = b.relu(x, name="right", device="d")
        out = b.add(left, right, name="out", device="d")
        session = self._session(b)
        session.run(feeds={"x": np.array([2.0, -3.0], dtype=np.float32)})
        np.testing.assert_allclose(session.numpy("out"), [6.0, 9.0])
        assert session.executor_for("d").ops_executed == 4

    def test_transient_tensors_freed_between_iterations(self):
        b = GraphBuilder()
        x = b.placeholder([1024], name="x", device="d")
        b.square(x, name="y", device="d")
        session = self._session(b)
        executor = session.executor_for("d")
        feed = {"x": np.zeros(1024, dtype=np.float32)}
        session.run(iterations=5, feeds=feed)
        # Two transient tensors per iteration (feed + output); the heap
        # only holds the last iteration's.
        assert executor.heap.bytes_live <= 2 * 1024 * 4

    def test_run_stats_lengths(self):
        b = GraphBuilder()
        b.synthetic_compute(1e-4, name="op", device="d")
        session = self._session(b)
        stats = session.run(iterations=7)
        assert stats.iterations == 7
        assert len(stats.iteration_times) == 7
        assert stats.total_time == pytest.approx(
            sum(stats.iteration_times), rel=0.01)

    def test_time_limit_enforced(self):
        b = GraphBuilder()
        b.synthetic_compute(10.0, name="slow", device="d")
        cluster = Cluster(1)
        session = Session(cluster, b.finalize(), {"d": cluster.hosts[0]})
        with pytest.raises(SimulationError, match="time limit"):
            session.run(time_limit=1.0)

    def test_feeds_fn_called_per_iteration(self):
        b = GraphBuilder()
        x = b.placeholder([1], name="x", device="d")
        b.identity(x, name="out", device="d")
        session = self._session(b)
        seen = []

        def feeds_fn(iteration):
            seen.append(iteration)
            return {"x": np.array([float(iteration)], dtype=np.float32)}

        session.run(iterations=3, feeds_fn=feeds_fn)
        assert seen == [0, 1, 2]
        assert session.numpy("out")[0] == 2.0


class TestOutcomeApi:
    def test_constructors(self):
        cluster = Cluster(1)
        sync = Outcome.done([])
        assert sync.kind == "sync"
        event = cluster.sim.event()
        asynco = Outcome.wait(event)
        assert asynco.kind == "async" and asynco.event is event
        polling = Outcome.polling(poll=lambda: True,
                                  complete=lambda: Outcome.done([]))
        assert polling.kind == "poll"
        assert polling.poll()
