"""Property-based tests for graph partitioning invariants."""

from hypothesis import given, settings, strategies as st

from repro.graph import GraphBuilder, partition


def build_random_graph(num_nodes, device_choices, edge_seeds):
    """A random DAG of Identity/Add nodes over random devices."""
    b = GraphBuilder("prop")
    outputs = [b.placeholder([4], name="src",
                             device=device_choices[0])]
    for i in range(num_nodes):
        device = device_choices[edge_seeds[i] % len(device_choices)]
        pick = outputs[edge_seeds[i] % len(outputs)]
        if edge_seeds[i] % 3 == 0 and len(outputs) >= 2:
            other = outputs[(edge_seeds[i] // 3) % len(outputs)]
            node = b.add(pick, other, name=f"n{i}", device=device)
        else:
            node = b.identity(pick, name=f"n{i}", device=device)
        outputs.append(node)
    return b.finalize()


graph_strategy = st.tuples(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=1, max_value=4),
    st.lists(st.integers(min_value=0, max_value=10 ** 6),
             min_size=25, max_size=25),
)


class TestPartitionInvariants:
    @settings(max_examples=60, deadline=None)
    @given(params=graph_strategy)
    def test_every_node_lands_in_exactly_one_subgraph(self, params):
        num_nodes, num_devices, seeds = params
        devices = [f"d{i}" for i in range(num_devices)]
        graph = build_random_graph(num_nodes, devices, seeds)
        parts = partition(graph)
        original = {n.name for n in graph}
        placed = [n.name for sub in parts.subgraphs.values() for n in sub
                  if n.op_type not in ("_Send", "_Recv")]
        assert sorted(placed) == sorted(original)

    @settings(max_examples=60, deadline=None)
    @given(params=graph_strategy)
    def test_sends_and_recvs_pair_up(self, params):
        num_nodes, num_devices, seeds = params
        devices = [f"d{i}" for i in range(num_devices)]
        parts = partition(build_random_graph(num_nodes, devices, seeds))
        sends = {n.attrs["key"] for sub in parts.subgraphs.values()
                 for n in sub.nodes_of_type("_Send")}
        recvs = {n.attrs["key"] for sub in parts.subgraphs.values()
                 for n in sub.nodes_of_type("_Recv")}
        assert sends == recvs
        assert len(sends) == len(parts.transfers)

    @settings(max_examples=60, deadline=None)
    @given(params=graph_strategy)
    def test_subgraphs_remain_acyclic_and_device_pure(self, params):
        num_nodes, num_devices, seeds = params
        devices = [f"d{i}" for i in range(num_devices)]
        parts = partition(build_random_graph(num_nodes, devices, seeds))
        for device, sub in parts.subgraphs.items():
            sub.topological_order()  # raises on cycle
            for node in sub:
                assert node.device == device
                for src in node.inputs:
                    assert src.node.device == device

    @settings(max_examples=40, deadline=None)
    @given(params=graph_strategy)
    def test_transfer_edges_reference_real_nodes(self, params):
        num_nodes, num_devices, seeds = params
        devices = [f"d{i}" for i in range(num_devices)]
        parts = partition(build_random_graph(num_nodes, devices, seeds))
        for edge in parts.transfers:
            assert edge.send_node in parts.subgraphs[edge.src_device]
            assert edge.recv_node in parts.subgraphs[edge.dst_device]
            assert edge.src_node in parts.subgraphs[edge.src_device]
