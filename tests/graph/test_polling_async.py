"""Focused tests for the polling-async execution mode (paper §4).

Uses a scripted CommRuntime whose recv outcomes poll under test
control, verifying the scheduler behaviour the paper specifies: a
poll-miss re-enqueues the operator at the *tail* of the ready queue
(other ready work runs first), poll hits complete the op, and an
executor with only pollers left advances time with bounded back-off
instead of spinning.
"""

import numpy as np
import pytest

from repro.graph import GraphBuilder, Outcome, Session
from repro.graph.transfer_api import CommRuntime
from repro.simnet import Cluster


class ScriptedComm(CommRuntime):
    """Recv polls succeed once the simulated clock passes a deadline."""

    name = "scripted"

    def __init__(self, ready_at: float) -> None:
        self.ready_at = ready_at
        self.poll_calls = 0
        self.send_log = []
        self._session = None
        self._tensors = {}

    def prepare(self, session) -> None:
        self._session = session

    def execute_send(self, executor, node, tensor):
        self.send_log.append((executor.sim.now, node.attrs["key"]))
        self._tensors[node.attrs["key"]] = tensor
        return Outcome.done([])

    def execute_recv(self, executor, node):
        key = node.attrs["key"]
        sim = executor.sim

        def poll() -> bool:
            self.poll_calls += 1
            return sim.now >= self.ready_at and key in self._tensors

        def complete() -> Outcome:
            return Outcome.done([self._tensors[key]])
        return Outcome.polling(poll=poll, complete=complete)


def build_session(comm, extra_work: float = 0.0):
    """x (worker) -> sink (ps), plus optional local busywork."""
    cluster = Cluster(2)
    b = GraphBuilder()
    x = b.placeholder([4], name="x", device="worker0")
    b.identity(x, name="out", device="ps0")
    if extra_work:
        b.synthetic_compute(extra_work, name="busy", device="ps0")
    session = Session(cluster, b.finalize(),
                      {"worker0": cluster.hosts[0],
                       "ps0": cluster.hosts[1]}, comm=comm)
    return cluster, session


class TestPollingAsync:
    def test_poll_misses_then_completes(self):
        comm = ScriptedComm(ready_at=0.001)
        cluster, session = build_session(comm)
        session.run(feeds={"x": np.arange(4, dtype=np.float32)})
        assert comm.poll_calls > 1          # missed at least once
        assert cluster.sim.now >= 0.001     # completed only after ready
        np.testing.assert_allclose(session.numpy("out"),
                                   [0, 1, 2, 3])

    def test_other_ready_work_runs_during_polling(self):
        """The §4 property: a polling op must not block ready ops."""
        comm = ScriptedComm(ready_at=0.010)
        cluster, session = build_session(comm, extra_work=0.002)
        executor = session.executor_for("ps0")
        done_times = {}

        original = executor._execute

        def traced(node, feeds):
            result = yield from original(node, feeds)
            done_times[node.name] = executor.sim.now
            return result
        executor._execute = traced
        session.run(feeds={"x": np.zeros(4, dtype=np.float32)})
        # The busywork finished long before the recv became ready.
        assert done_times["busy"] < 0.005

    def test_idle_backoff_bounds_event_count(self):
        """Waiting 50 ms on a single poller must not poll millions of
        times: the exponential back-off caps the sweep rate."""
        comm = ScriptedComm(ready_at=0.050)
        cluster, session = build_session(comm)
        session.run(feeds={"x": np.zeros(4, dtype=np.float32)})
        assert comm.poll_calls < 500

    def test_executor_poll_miss_counter(self):
        comm = ScriptedComm(ready_at=0.002)
        cluster, session = build_session(comm)
        executor = session.executor_for("ps0")
        session.run(feeds={"x": np.zeros(4, dtype=np.float32)})
        assert executor.poll_misses == comm.poll_calls - 1

    def test_immediate_readiness_needs_no_backoff(self):
        comm = ScriptedComm(ready_at=0.0)
        cluster, session = build_session(comm)
        executor = session.executor_for("ps0")
        session.run(feeds={"x": np.zeros(4, dtype=np.float32)})
        # At most a couple of misses while the producer's send lands;
        # no long back-off spinning.
        assert executor.poll_misses <= 2

    def test_multiple_iterations_reuse_polling(self):
        comm = ScriptedComm(ready_at=0.0)
        cluster, session = build_session(comm)
        session.run(iterations=3,
                    feeds={"x": np.zeros(4, dtype=np.float32)})
        assert len(comm.send_log) == 3
