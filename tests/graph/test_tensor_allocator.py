"""Unit tests for tensors, metadata encoding, and allocators."""

import numpy as np
import pytest

from repro.graph.allocator import (AllocatorError, ArenaAllocator,
                                   HostAllocator)
from repro.graph.dtypes import DType
from repro.graph.shapes import Shape
from repro.graph.tensor import Tensor, TensorMeta, tensor_nbytes
from repro.simnet import Cluster


@pytest.fixture
def host():
    return Cluster(1).hosts[0]


class TestTensor:
    def test_nbytes(self, host):
        buf = host.allocate(400)
        tensor = Tensor(DType.float32, Shape([10, 10]), buf)
        assert tensor.nbytes == 400

    def test_array_view_roundtrip(self, host):
        buf = host.allocate(24)
        tensor = Tensor(DType.float32, Shape([2, 3]), buf)
        values = np.arange(6, dtype=np.float32).reshape(2, 3)
        tensor.copy_from(values)
        assert np.array_equal(tensor.array, values)

    def test_array_view_is_zero_copy(self, host):
        buf = host.allocate(8)
        tensor = Tensor(DType.float32, Shape([2]), buf)
        tensor.array[0] = 7.0
        # The bytes live in the simulated buffer itself.
        assert np.frombuffer(buf.read(0, 4), dtype=np.float32)[0] == 7.0

    def test_too_small_buffer_rejected(self, host):
        buf = host.allocate(8)
        with pytest.raises(ValueError):
            Tensor(DType.float32, Shape([100]), buf)

    def test_virtual_tensor_has_no_array(self, host):
        buf = host.allocate(64 * 1024 * 1024)  # virtual backing
        tensor = Tensor(DType.float32, Shape([4096, 4096]), buf)
        assert not tensor.is_dense
        with pytest.raises(ValueError):
            _ = tensor.array

    def test_copy_from_shape_mismatch(self, host):
        buf = host.allocate(16)
        tensor = Tensor(DType.float32, Shape([4]), buf)
        with pytest.raises(ValueError):
            tensor.copy_from(np.zeros((2, 2), dtype=np.float32))

    def test_offset_tensor(self, host):
        buf = host.allocate(64)
        tensor = Tensor(DType.float32, Shape([4]), buf, offset=16)
        assert tensor.addr == buf.addr + 16

    def test_unmaterialized(self):
        tensor = Tensor(DType.float32, Shape([None, 2]), None)
        assert not tensor.is_materialized
        with pytest.raises(ValueError):
            _ = tensor.addr


class TestTensorMeta:
    def test_roundtrip(self):
        meta = TensorMeta(dtype=DType.float32, dims=(8, 128, 4),
                          remote_addr=0xdeadbeef, remote_rkey=1234)
        decoded = TensorMeta.decode(meta.encode())
        assert decoded == meta

    def test_scalar_meta(self):
        meta = TensorMeta(dtype=DType.int64, dims=(), remote_addr=1,
                          remote_rkey=2)
        assert TensorMeta.decode(meta.encode()) == meta

    def test_encoded_size_fixed_per_rank(self):
        """§3.3: rank fixed => metadata size fixed across mini-batches."""
        m1 = TensorMeta(DType.float32, (5, 80), 0, 0)
        m2 = TensorMeta(DType.float32, (999999, 1), 2**60, 2**31)
        assert len(m1.encode()) == len(m2.encode())
        assert len(m1.encode()) == TensorMeta.encoded_size(2)

    def test_data_nbytes(self):
        meta = TensorMeta(DType.float64, (3, 4), 0, 0)
        assert meta.data_nbytes == 96

    def test_truncated_rejected(self):
        meta = TensorMeta(DType.float32, (8, 8), 0, 0)
        with pytest.raises(ValueError):
            TensorMeta.decode(meta.encode()[:-2])

    def test_slot_size_has_flag(self):
        assert TensorMeta.slot_size(3) == TensorMeta.encoded_size(3) + 1


class TestHostAllocator:
    def test_allocates_and_notifies(self, host):
        allocator = HostAllocator(host)
        seen = []
        allocator.add_observer(lambda t, node, idx: seen.append((node, idx)))
        tensor = allocator.allocate_tensor(DType.float32, Shape([4]),
                                           node_name="matmul", alloc_index=1)
        assert tensor.is_dense
        assert seen == [("matmul", 1)]
        assert allocator.allocation_count == 1

    def test_free(self, host):
        allocator = HostAllocator(host)
        tensor = allocator.allocate_tensor(DType.float32, Shape([4]))
        allocator.free_tensor(tensor)
        assert allocator.bytes_live == 0

    def test_remove_observer(self, host):
        allocator = HostAllocator(host)
        seen = []
        observer = lambda t, n, i: seen.append(1)
        allocator.add_observer(observer)
        allocator.remove_observer(observer)
        allocator.allocate_tensor(DType.float32, Shape([1]))
        assert seen == []


class TestArenaAllocator:
    def _arena(self, host, size=4096):
        return ArenaAllocator(host.allocate(size, dense=True))

    def test_allocate_within_arena(self, host):
        arena = self._arena(host)
        tensor = arena.allocate_tensor(DType.float32, Shape([8]))
        assert tensor.buffer is arena.backing
        assert 0 <= tensor.offset < arena.capacity

    def test_distinct_offsets(self, host):
        arena = self._arena(host)
        a = arena.allocate_tensor(DType.float32, Shape([8]))
        b = arena.allocate_tensor(DType.float32, Shape([8]))
        assert abs(a.offset - b.offset) >= 32

    def test_exhaustion(self, host):
        arena = self._arena(host, size=256)
        arena.allocate_block(128)
        with pytest.raises(AllocatorError, match="exhausted"):
            arena.allocate_block(200)

    def test_free_and_reuse(self, host):
        arena = self._arena(host, size=256)
        offset = arena.allocate_block(200)
        arena.free_block(offset)
        assert arena.allocate_block(200) == offset

    def test_coalescing(self, host):
        arena = self._arena(host, size=1024)
        offsets = [arena.allocate_block(128) for _ in range(8)]
        for offset in offsets:
            arena.free_block(offset)
        # After freeing everything the arena must be one block again.
        assert arena.allocate_block(1024) == 0

    def test_double_free(self, host):
        arena = self._arena(host)
        offset = arena.allocate_block(64)
        arena.free_block(offset)
        with pytest.raises(AllocatorError):
            arena.free_block(offset)

    def test_invariants_hold_through_churn(self, host):
        arena = self._arena(host, size=64 * 1024)
        import random
        rng = random.Random(7)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.45:
                arena.free_block(live.pop(rng.randrange(len(live))))
            else:
                try:
                    live.append(arena.allocate_block(rng.randint(1, 4096)))
                except AllocatorError:
                    pass
            arena.check_invariants()

    def test_peak_tracking(self, host):
        arena = self._arena(host, size=4096)
        a = arena.allocate_block(1000)
        b = arena.allocate_block(1000)
        arena.free_block(a)
        arena.free_block(b)
        assert arena.peak_bytes >= 2000
        assert arena.bytes_live == 0

    def test_zero_size_rejected(self, host):
        with pytest.raises(AllocatorError):
            self._arena(host).allocate_block(0)

    def test_foreign_tensor_rejected(self, host):
        arena = self._arena(host)
        other = HostAllocator(host).allocate_tensor(DType.float32, Shape([1]))
        with pytest.raises(AllocatorError):
            arena.free_tensor(other)
