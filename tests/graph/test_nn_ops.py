"""Unit tests for the convolutional/regularization operators."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, GraphError, Session
from repro.simnet import Cluster


def run_graph(build_fn, feeds):
    cluster = Cluster(1)
    b = GraphBuilder()
    out_name = build_fn(b)
    graph = b.finalize()
    devices = {n.device or "device0" for n in graph}
    session = Session(cluster, graph,
                      {d: cluster.hosts[0] for d in devices})
    session.run(feeds=feeds)
    return session, out_name


class TestConv2D:
    def test_identity_kernel(self):
        """A 1x1 identity kernel reproduces the input exactly."""
        def build(b):
            x = b.placeholder([1, 4, 4, 2], name="x")
            kernel = b.constant(np.eye(2, dtype=np.float32).reshape(1, 1, 2, 2))
            return b.conv2d(x, kernel, name="y").node.name
        x_val = np.random.default_rng(0).normal(
            size=(1, 4, 4, 2)).astype(np.float32)
        session, name = run_graph(build, {"x": x_val})
        np.testing.assert_allclose(session.numpy(name), x_val, rtol=1e-6)

    def test_matches_manual_convolution(self):
        def build(b):
            x = b.placeholder([1, 5, 5, 1], name="x")
            kernel = b.constant(np.ones((3, 3, 1, 1), dtype=np.float32))
            return b.conv2d(x, kernel, padding="valid", name="y").node.name
        x_val = np.arange(25, dtype=np.float32).reshape(1, 5, 5, 1)
        session, name = run_graph(build, {"x": x_val})
        got = session.numpy(name)[0, :, :, 0]
        expected = np.array([[np.sum(x_val[0, i:i+3, j:j+3, 0])
                              for j in range(3)] for i in range(3)])
        np.testing.assert_allclose(got, expected)

    def test_same_padding_preserves_spatial_dims(self):
        def build(b):
            x = b.placeholder([2, 8, 8, 3], name="x")
            kernel = b.constant(np.zeros((3, 3, 3, 16), dtype=np.float32))
            return b.conv2d(x, kernel, padding="same", name="y").node.name
        session, name = run_graph(
            build, {"x": np.zeros((2, 8, 8, 3), dtype=np.float32)})
        assert session.numpy(name).shape == (2, 8, 8, 16)

    def test_stride_downsamples(self):
        b = GraphBuilder()
        x = b.placeholder([1, 8, 8, 1], name="x")
        kernel = b.constant(np.zeros((3, 3, 1, 4), dtype=np.float32))
        y = b.conv2d(x, kernel, stride=2, padding="same")
        b.finalize()
        assert y.node.output_shapes[0] == (1, 4, 4, 4)

    def test_channel_mismatch_rejected(self):
        b = GraphBuilder()
        x = b.placeholder([1, 4, 4, 3], name="x")
        kernel = b.constant(np.zeros((3, 3, 2, 8), dtype=np.float32))
        b.conv2d(x, kernel)
        with pytest.raises(GraphError, match="channel mismatch"):
            b.finalize()

    def test_unknown_batch_propagates(self):
        b = GraphBuilder()
        x = b.placeholder([None, 8, 8, 3], name="x")
        kernel = b.constant(np.zeros((3, 3, 3, 8), dtype=np.float32))
        y = b.conv2d(x, kernel)
        b.finalize()
        assert y.node.output_shapes[0] == (None, 8, 8, 8)


class TestPooling:
    def test_max_pool_values(self):
        def build(b):
            x = b.placeholder([1, 4, 4, 1], name="x")
            return b.max_pool(x, window=2, name="y").node.name
        x_val = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        session, name = run_graph(build, {"x": x_val})
        np.testing.assert_allclose(session.numpy(name)[0, :, :, 0],
                                   [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        def build(b):
            x = b.placeholder([1, 2, 2, 1], name="x")
            return b.avg_pool(x, window=2, name="y").node.name
        x_val = np.array([1, 2, 3, 4], dtype=np.float32).reshape(1, 2, 2, 1)
        session, name = run_graph(build, {"x": x_val})
        assert session.numpy(name)[0, 0, 0, 0] == 2.5

    def test_pool_preserves_channels(self):
        b = GraphBuilder()
        x = b.placeholder([4, 16, 16, 7], name="x")
        y = b.max_pool(x, window=2)
        b.finalize()
        assert y.node.output_shapes[0] == (4, 8, 8, 7)


class TestOtherLayers:
    def test_bias_add_broadcasts_over_channels(self):
        def build(b):
            x = b.placeholder([2, 2, 2, 3], name="x")
            bias = b.constant(np.array([1, 10, 100], dtype=np.float32))
            return b.bias_add(x, bias, name="y").node.name
        x_val = np.zeros((2, 2, 2, 3), dtype=np.float32)
        session, name = run_graph(build, {"x": x_val})
        np.testing.assert_allclose(session.numpy(name)[0, 0, 0], [1, 10, 100])

    def test_bias_shape_checked(self):
        b = GraphBuilder()
        x = b.placeholder([1, 2, 2, 3], name="x")
        bias = b.constant(np.zeros(4, dtype=np.float32))
        b.bias_add(x, bias)
        with pytest.raises(GraphError):
            b.finalize()

    def test_batch_norm_normalizes(self):
        def build(b):
            x = b.placeholder([8, 4], name="x")
            gamma = b.constant(np.ones(4, dtype=np.float32))
            beta = b.constant(np.zeros(4, dtype=np.float32))
            return b.batch_norm(x, gamma, beta, name="y").node.name
        rng = np.random.default_rng(0)
        x_val = rng.normal(5.0, 3.0, size=(8, 4)).astype(np.float32)
        session, name = run_graph(build, {"x": x_val})
        out = session.numpy(name)
        assert abs(out.mean()) < 1e-4
        assert abs(out.std() - 1.0) < 0.05

    def test_dropout_training_zeroes_and_scales(self):
        def build(b):
            x = b.placeholder([1000], name="x")
            return b.dropout(x, rate=0.4, seed=3, name="y").node.name
        x_val = np.ones(1000, dtype=np.float32)
        session, name = run_graph(build, {"x": x_val})
        out = session.numpy(name)
        dropped = (out == 0).mean()
        assert 0.3 < dropped < 0.5
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.6, rtol=1e-5)

    def test_dropout_inference_is_identity(self):
        def build(b):
            x = b.placeholder([16], name="x")
            return b.dropout(x, rate=0.9, training=False,
                             name="y").node.name
        x_val = np.arange(16, dtype=np.float32)
        session, name = run_graph(build, {"x": x_val})
        np.testing.assert_allclose(session.numpy(name), x_val)

    def test_dropout_rate_validated(self):
        b = GraphBuilder()
        x = b.placeholder([4], name="x")
        b.dropout(x, rate=1.0)
        with pytest.raises(GraphError):
            b.finalize()

    def test_flatten(self):
        b = GraphBuilder()
        x = b.placeholder([8, 4, 4, 3], name="x")
        y = b.flatten(x)
        b.finalize()
        assert y.node.output_shapes[0] == (8, 48)


class TestEndToEndCnn:
    def test_small_cnn_across_servers(self):
        """conv -> pool -> flatten -> dense, with the conv weights on a
        parameter server reached over RDMA."""
        from repro.core import RdmaCommRuntime
        cluster = Cluster(2)
        rng = np.random.default_rng(1)
        b = GraphBuilder()
        x = b.placeholder([4, 8, 8, 1], name="x", device="worker0")
        kernel = b.variable([3, 3, 1, 4], name="k", device="ps0",
                            initializer=rng.normal(
                                0, 0.2, (3, 3, 1, 4)).astype(np.float32))
        conv = b.conv2d(x, kernel, name="conv", device="worker0")
        act = b.relu(conv, device="worker0")
        pooled = b.max_pool(act, window=2, device="worker0")
        flat = b.flatten(pooled, name="flat", device="worker0")
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=RdmaCommRuntime())
        x_val = rng.normal(size=(4, 8, 8, 1)).astype(np.float32)
        session.run(feeds={"x": x_val})
        assert session.numpy("flat").shape == (4, 4 * 4 * 4)
        assert session.numpy("flat").any()
