"""Unit tests for graph IR, shape inference, and partitioning."""

import numpy as np
import pytest

from repro.graph import (DType, GraphBuilder, GraphError, Shape, infer_shapes,
                         partition)


def small_forward(device=None):
    """W2 @ sigmoid(W1 @ x): the paper's Figure 1 forward pass."""
    b = GraphBuilder("fig1")
    x = b.placeholder([4, 1], name="x", device=device)
    w1 = b.variable([8, 4], name="W1", device=device)
    w2 = b.variable([3, 8], name="W2", device=device)
    h = b.sigmoid(b.matmul(w1, x, device=device), name="h", device=device)
    y = b.sigmoid(b.matmul(w2, h, device=device), name="y", device=device)
    return b, y


class TestGraphStructure:
    def test_duplicate_names_rejected(self):
        b = GraphBuilder()
        b.placeholder([1], name="x")
        with pytest.raises(GraphError):
            b.graph.add_node("x", "NoOp")

    def test_unique_name_generation(self):
        b = GraphBuilder()
        first = b.placeholder([1])
        second = b.placeholder([1])
        assert first.node.name != second.node.name

    def test_topological_order_respects_edges(self):
        b, y = small_forward()
        order = [n.name for n in b.graph.topological_order()]
        assert order.index("x") < order.index("h")
        assert order.index("h") < order.index("y")

    def test_cycle_detected(self):
        b = GraphBuilder()
        a = b.placeholder([1], name="a")
        node1 = b.graph.add_node("n1", "Identity", [a])
        node2 = b.graph.add_node("n2", "Identity", [node1.output(0)])
        node1.inputs.append(node2.output(0))
        with pytest.raises(GraphError, match="cycle"):
            b.graph.topological_order()

    def test_control_inputs_order(self):
        b = GraphBuilder()
        a = b.placeholder([1], name="a")
        barrier = b.graph.add_node("barrier", "NoOp")
        barrier.add_control_input(a.node)
        order = [n.name for n in b.graph.topological_order()]
        assert order.index("a") < order.index("barrier")

    def test_self_control_rejected(self):
        b = GraphBuilder()
        node = b.graph.add_node("n", "NoOp")
        with pytest.raises(GraphError):
            node.add_control_input(node)

    def test_consumers(self):
        b, y = small_forward()
        w1 = b.graph.node("W1")
        consumers = b.graph.consumers(w1)
        assert any(n.op_type == "MatMul" for n in consumers)

    def test_foreign_input_rejected(self):
        b1, y1 = small_forward()
        b2 = GraphBuilder()
        with pytest.raises(GraphError):
            b2.graph.add_node("bad", "Identity", [y1])


class TestShapeInference:
    def test_forward_shapes(self):
        b, y = small_forward()
        b.finalize()
        assert b.graph.node("h").output_shapes[0] == (8, 1)
        assert y.node.output_shapes[0] == (3, 1)

    def test_static_flag_set(self):
        b, y = small_forward()
        b.finalize()
        assert all(node.static_shape for node in b.graph)

    def test_dynamic_batch_propagates(self):
        b = GraphBuilder()
        x = b.placeholder([None, 10], name="x")
        w = b.variable([10, 5], name="w")
        out = b.matmul(x, w)
        b.finalize()
        assert out.node.output_shapes[0] == (None, 5)
        assert not out.node.static_shape

    def test_reduce_shapes(self):
        b = GraphBuilder()
        x = b.placeholder([4, 6], name="x")
        total = b.reduce_sum(x)
        per_col = b.reduce_max(x, axis=0)
        b.finalize()
        assert total.node.output_shapes[0] == ()
        assert per_col.node.output_shapes[0] == (6,)

    def test_xent_two_outputs(self):
        b = GraphBuilder()
        logits = b.placeholder([32, 10], name="logits")
        labels = b.placeholder([32, 10], name="labels")
        loss, dlogits = b.softmax_cross_entropy(logits, labels)
        b.finalize()
        assert loss.shape == ()
        assert dlogits.shape == (32, 10)

    def test_synthetic_outputs(self):
        b = GraphBuilder()
        node = b.synthetic_compute(
            0.01, outputs=[(DType.float32, Shape([100, 100]))])
        b.finalize()
        assert node.node.output_shapes[0] == (100, 100)


class TestPartitioning:
    def _two_device_graph(self):
        b = GraphBuilder()
        w = b.variable([16, 16], name="weight", device="ps0")
        x = b.placeholder([16, 16], name="x", device="worker0")
        prod = b.matmul(w, x, name="prod", device="worker0")
        b.finalize()
        return b.graph

    def test_subgraph_split(self):
        parts = partition(self._two_device_graph())
        assert set(parts.devices) == {"ps0", "worker0"}
        assert "weight" in parts.subgraphs["ps0"]
        assert "prod" in parts.subgraphs["worker0"]

    def test_send_recv_inserted(self):
        parts = partition(self._two_device_graph())
        sends = parts.subgraphs["ps0"].nodes_of_type("_Send")
        recvs = parts.subgraphs["worker0"].nodes_of_type("_Recv")
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0].attrs["key"] == recvs[0].attrs["key"]

    def test_transfer_edge_metadata(self):
        parts = partition(self._two_device_graph())
        (edge,) = parts.transfers
        assert edge.src_device == "ps0"
        assert edge.dst_device == "worker0"
        assert edge.static_shape
        assert edge.nbytes_static == 16 * 16 * 4

    def test_recv_inherits_shape_and_dtype(self):
        parts = partition(self._two_device_graph())
        (recv,) = parts.subgraphs["worker0"].nodes_of_type("_Recv")
        assert recv.output_shapes[0] == (16, 16)
        assert recv.output_dtypes[0] is DType.float32

    def test_multiple_consumers_share_one_transfer(self):
        b = GraphBuilder()
        w = b.variable([4, 4], name="w", device="ps0")
        a = b.identity(w, name="a", device="worker0")
        c = b.identity(w, name="c", device="worker0")
        b.finalize()
        parts = partition(b.graph)
        assert len(parts.transfers) == 1

    def test_distinct_destinations_get_distinct_transfers(self):
        b = GraphBuilder()
        w = b.variable([4, 4], name="w", device="ps0")
        b.identity(w, name="a", device="worker0")
        b.identity(w, name="c", device="worker1")
        b.finalize()
        parts = partition(b.graph)
        assert len(parts.transfers) == 2
        assert {t.dst_device for t in parts.transfers} == {"worker0", "worker1"}

    def test_dynamic_shape_edge_marked(self):
        b = GraphBuilder()
        x = b.placeholder([None, 8], name="x", device="worker0")
        consumer = b.identity(x, name="sink", device="ps0")
        b.finalize()
        parts = partition(b.graph)
        (edge,) = parts.transfers
        assert not edge.static_shape
        assert edge.nbytes_static is None

    def test_cross_device_control_edge_rejected(self):
        b = GraphBuilder()
        a = b.placeholder([1], name="a", device="worker0")
        sink = b.graph.add_node("sink", "NoOp", device="ps0")
        sink.add_control_input(a.node)
        b.finalize()
        with pytest.raises(GraphError, match="control edge"):
            partition(b.graph)

    def test_single_device_no_transfers(self):
        b, y = small_forward(device="worker0")
        b.finalize()
        parts = partition(b.graph)
        assert parts.transfers == []
        assert len(parts.devices) == 1

    def test_transfer_queries(self):
        parts = partition(self._two_device_graph())
        assert len(parts.transfers_into("worker0")) == 1
        assert len(parts.transfers_out_of("ps0")) == 1
        assert parts.transfers_into("ps0") == []
