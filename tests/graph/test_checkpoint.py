"""Tests for variable checkpointing (save/restore)."""

import numpy as np
import pytest

from repro.core import RdmaCommRuntime
from repro.graph import DType, GraphBuilder, Session, Shape
from repro.graph.checkpoint import CheckpointError, restore, save
from repro.simnet import Cluster


def make_session(device_map=None, init_scale=1.0):
    cluster = Cluster(max(len(set((device_map or {"d": 0}).values())), 1))
    b = GraphBuilder()
    devices = device_map or {"d": 0}
    names = list(devices)
    rng = np.random.default_rng(7)
    b.variable([4, 4], name="w1", device=names[0],
               initializer=init_scale * rng.normal(size=(4, 4)))
    b.variable([8], name="w2", device=names[-1],
               initializer=init_scale * rng.normal(size=8))
    graph = b.finalize()
    comm = RdmaCommRuntime() if len(set(devices.values())) > 1 else None
    session = Session(cluster, graph,
                      {name: cluster.hosts[i]
                       for name, i in devices.items()},
                      comm=comm) if comm else Session(
        cluster, graph, {name: cluster.hosts[i]
                         for name, i in devices.items()})
    return session


class TestSaveRestore:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        session = make_session()
        original = session.variable("w1").array.copy()
        assert save(session, path) == 2

        fresh = make_session(init_scale=0.0)
        assert not np.array_equal(fresh.variable("w1").array, original)
        assert restore(fresh, path) == 2
        np.testing.assert_array_equal(fresh.variable("w1").array, original)

    def test_cross_partitioning_restore(self, tmp_path):
        """Save from a two-partition session, restore into one device."""
        path = str(tmp_path / "ckpt.npz")
        multi = make_session({"ps0": 0, "worker0": 1})
        save(multi, path)
        single = make_session(init_scale=0.0)
        restore(single, path)
        np.testing.assert_array_equal(
            single.variable("w2").array,
            multi.variable("w2").array)

    def test_selective_save(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        session = make_session()
        assert save(session, path, names=["w2"]) == 1
        fresh = make_session(init_scale=0.0)
        with pytest.raises(CheckpointError, match="unknown variable"):
            save(session, path, names=["nope"])
        assert restore(fresh, path, strict=True) == 1

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        session = make_session()
        save(session, path)
        cluster = Cluster(1)
        b = GraphBuilder()
        b.variable([5, 5], name="w1",
                   initializer=np.zeros((5, 5), dtype=np.float32))
        b.variable([8], name="w2",
                   initializer=np.zeros(8, dtype=np.float32))
        other = Session(cluster, b.finalize(), {"device0": cluster.hosts[0]})
        with pytest.raises(CheckpointError, match="shape"):
            restore(other, path)

    def test_unknown_variable_strictness(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        session = make_session()
        save(session, path)
        cluster = Cluster(1)
        b = GraphBuilder()
        b.variable([4, 4], name="w1",
                   initializer=np.zeros((4, 4), dtype=np.float32))
        partial = Session(cluster, b.finalize(),
                          {"device0": cluster.hosts[0]})
        with pytest.raises(CheckpointError, match="does not"):
            restore(partial, path, strict=True)
        assert restore(partial, path, strict=False) == 1

    def test_virtual_variables_validated_by_shape(self, tmp_path):
        """Big (virtual) variables round-trip as shape metadata."""
        path = str(tmp_path / "ckpt.npz")
        cluster = Cluster(1)
        b = GraphBuilder()
        b.variable([4096, 4096], name="big")   # 64 MB -> virtual backing
        session = Session(cluster, b.finalize(),
                          {"device0": cluster.hosts[0]})
        assert save(session, path) == 1

        cluster2 = Cluster(1)
        b2 = GraphBuilder()
        b2.variable([4096, 4096], name="big")
        session2 = Session(cluster2, b2.finalize(),
                           {"device0": cluster2.hosts[0]})
        assert restore(session2, path) == 1

    def test_training_then_checkpoint(self, tmp_path):
        """State saved mid-training resumes exactly."""
        path = str(tmp_path / "ckpt.npz")
        cluster = Cluster(1)
        b = GraphBuilder()
        w = b.variable([2], name="w",
                       initializer=np.array([1.0, 2.0], dtype=np.float32))
        g = b.constant(np.ones(2, dtype=np.float32))
        b.apply_gradient(w, g, lr=0.25, name="step")
        session = Session(cluster, b.finalize(),
                          {"device0": cluster.hosts[0]})
        session.run(iterations=4)   # w -> [0.0, 1.0]
        save(session, path)

        resumed = make_resumable()
        restore(resumed, path)
        np.testing.assert_allclose(resumed.variable("w").array, [0.0, 1.0])
        resumed.run(iterations=4)   # continue training
        np.testing.assert_allclose(resumed.variable("w").array, [-1.0, 0.0])


def make_resumable():
    cluster = Cluster(1)
    b = GraphBuilder()
    w = b.variable([2], name="w",
                   initializer=np.zeros(2, dtype=np.float32))
    g = b.constant(np.ones(2, dtype=np.float32))
    b.apply_gradient(w, g, lr=0.25, name="step")
    return Session(cluster, b.finalize(), {"device0": cluster.hosts[0]})
