"""Numeric and fallback tests for the switch-aggregated allreduce.

The equivalence tests use integer-valued float32 gradients: switch
aggregation, the host-tree fallback, and the flat ring then all compute
exact sums, so their outputs must be bit-identical even though their
floating-point reduction orders differ.  Fallback coverage exercises
the two degradation paths separately:

* **whole-round degrade** — a failed switch sends every chunk of the
  round down the host tree (``rounds_degraded``);
* **per-chunk spill** — a full aggregation slot pool spills only the
  excess chunks while the rest ride the switches (``chunks_spilled``).
"""

import numpy as np
import pytest

from repro.collectives import (innetwork_allreduce, innetwork_uplink_bytes,
                               innetwork_wire_bytes, ring_allreduce)
from repro.core import RdmaCommRuntime
from repro.graph import GraphBuilder, Session
from repro.simnet import Cluster, FaultInjector
from repro.simnet.costmodel import CostModel
from repro.simnet.fabric import build_fat_tree

from .test_fragments import run_fragment, worker_inputs


def _integer_arrays(n, size=6000, seed=0):
    rng = np.random.default_rng(seed=seed)
    return [rng.integers(-8, 8, size=size).astype(np.float32)
            for _ in range(n)]


def _run_innetwork(arrays, hosts_per_rack, size=None, cost=None,
                   fault_spec=None, fault_seed=0, iterations=1):
    """Build + run one in-network fragment on a fat tree.

    Returns ``(session, cluster, outputs)`` with metrics enabled so
    callers can assert on wire-byte roles and plane counters.
    """
    n = len(arrays)
    builder = GraphBuilder(f"innet{n}x{hosts_per_rack}")
    inputs, devices = worker_inputs(builder, arrays)
    outputs = innetwork_allreduce(builder, inputs, devices,
                                  hosts_per_rack=hosts_per_rack)
    fabric = build_fat_tree(n, hosts_per_rack, cost=cost)
    cluster = Cluster(n, cost=cost, fabric=fabric)
    cluster.enable_metrics()
    if fault_spec:
        cluster.install_faults(FaultInjector.from_spec(fault_spec,
                                                       seed=fault_seed))
    hosts = {dev: cluster.hosts[i] for i, dev in enumerate(devices)}
    session = Session(cluster, builder.finalize(), hosts,
                      comm=RdmaCommRuntime())
    session.run(iterations=iterations)
    return session, cluster, outputs


def _bytes_by_role(cluster):
    roles = {}
    for t in cluster.metrics.transfers:
        roles[t.role] = roles.get(t.role, 0) + t.nbytes
    return roles


@pytest.mark.parametrize("n,hosts_per_rack", [
    (2, 2),   # single rack: no spine leg
    (4, 2),   # 2 racks of 2
    (6, 2),   # 3 racks
    (6, 3),   # 2 racks of 3
    (8, 4),   # 2 racks of 4
])
def test_innetwork_sums_exactly(n, hosts_per_rack):
    arrays = _integer_arrays(n, seed=n * 10 + hosts_per_rack)
    expected = np.sum(arrays, axis=0)
    session, cluster, outputs = _run_innetwork(arrays, hosts_per_rack)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)
    snap = session.comm.innetwork.snapshot()["innet"]
    assert snap["rounds_degraded"] == 0
    assert snap["chunks_spilled"] == 0
    assert snap["chunks_switched"] == snap["chunks_per_round"]


def test_innetwork_matches_flat_ring_bitwise():
    # Integer-valued inputs: both schedules are exact, so the tensors
    # must agree bit for bit despite different reduction orders.
    arrays = _integer_arrays(4, seed=901)

    ring_builder = GraphBuilder("ring4")
    ring_in, ring_dev = worker_inputs(ring_builder, arrays)
    ring_out = ring_allreduce(ring_builder, ring_in, ring_dev)
    ring_session = run_fragment(ring_builder, ring_dev)

    _, _, innet_out = (session, cluster, outputs) = \
        _run_innetwork(arrays, hosts_per_rack=2)
    for r, i in zip(ring_out, innet_out):
        assert (ring_session.numpy(r.node.name, r.index).tobytes()
                == session.numpy(i.node.name, i.index).tobytes())


def test_innetwork_multiple_iterations_reuse_epochs():
    # Three rounds through the same flag byte: the epoch counter must
    # keep stale completions from round k satisfying round k+1.
    arrays = _integer_arrays(4, seed=55)
    expected = np.sum(arrays, axis=0)
    session, cluster, outputs = _run_innetwork(arrays, 2, iterations=3)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)
    snap = session.comm.innetwork.snapshot()["innet"]
    assert snap["rounds_switched"] == 3


def test_worker_egress_is_exactly_m():
    # The headline identity: each worker sends its M gradient bytes up
    # to the ToR once and receives M back — no 2(N-1)/N inflation.
    arrays = _integer_arrays(8, seed=3)
    nbytes = arrays[0].nbytes
    session, cluster, _ = _run_innetwork(arrays, hosts_per_rack=4)
    per_host = {}
    for t in cluster.metrics.transfers:
        if t.role == "in-network-aggregate":
            per_host[t.src_host] = per_host.get(t.src_host, 0) + t.nbytes
    assert len(per_host) == 8
    assert set(per_host.values()) == {nbytes}
    assert innetwork_wire_bytes(nbytes, 8) == nbytes


def test_switch_failure_degrades_to_host_tree():
    # A dead ToR aggregation engine: every round must detour down the
    # host-collective tree and still sum exactly.
    arrays = _integer_arrays(4, seed=77)
    expected = np.sum(arrays, axis=0)
    session, cluster, outputs = _run_innetwork(
        arrays, 2, fault_spec="switch-fail:host=tor0,p=1.0", fault_seed=3,
        iterations=2)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)
    snap = session.comm.innetwork.snapshot()["innet"]
    assert snap["rounds_degraded"] == 2
    assert snap["chunks_switched"] == 0
    roles = _bytes_by_role(cluster)
    # Fallback traffic is tagged with the host-collective role, and no
    # aggregate ever reached a switch.
    assert roles.get("collective-chunk", 0) > 0
    assert "in-network-aggregate" not in roles


def test_slot_exhaustion_spills_only_excess_chunks():
    # One 8000-byte slot for a 24000-byte tensor: the first chunk of a
    # round rides the switch, the rest spill to the host path — and the
    # sum stays exact across the mixed delivery.
    arrays = _integer_arrays(4, size=6000, seed=11)
    expected = np.sum(arrays, axis=0)
    cost = CostModel(switch_agg_slots=1, switch_agg_slot_bytes=8000)
    session, cluster, outputs = _run_innetwork(arrays, 2, cost=cost)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)
    snap = session.comm.innetwork.snapshot()["innet"]
    assert snap["chunks_spilled"] > 0
    assert snap["chunks_switched"] > 0
    assert snap["rounds_degraded"] == 0
    plane = session.comm.innetwork.snapshot()["plane"]
    assert plane["spilled_chunks"]["innet"] == snap["chunks_spilled"]


def test_single_worker_is_identity():
    builder = GraphBuilder("innet1")
    arrays = _integer_arrays(1, seed=5)
    inputs, devices = worker_inputs(builder, arrays)
    outputs = innetwork_allreduce(builder, inputs, devices,
                                  hosts_per_rack=1)
    assert outputs == inputs
    assert innetwork_wire_bytes(arrays[0].nbytes, 1) == 0


def test_wire_byte_analytics():
    M = 10 * 1024 * 1024
    # Per-worker egress is M regardless of N...
    assert innetwork_wire_bytes(M, 8) == M
    assert innetwork_wire_bytes(M, 128) == M
    # ...and each rack trunk carries its partial up plus the result
    # down; a single rack never touches the spine.
    assert innetwork_uplink_bytes(M, 4) == 2 * M
    assert innetwork_uplink_bytes(M, 1) == 0


def test_requires_fat_tree_fabric():
    from repro.core import DeviceError

    arrays = _integer_arrays(2, seed=9)
    builder = GraphBuilder("innetflat")
    inputs, devices = worker_inputs(builder, arrays)
    innetwork_allreduce(builder, inputs, devices, hosts_per_rack=2)
    cluster = Cluster(2)  # flat topology: no switches to aggregate in
    hosts = {dev: cluster.hosts[i] for i, dev in enumerate(devices)}
    with pytest.raises(DeviceError, match="fat-tree"):
        Session(cluster, builder.finalize(), hosts,
                comm=RdmaCommRuntime()).run(iterations=1)
