"""Numeric and predictive tests for the rack-hierarchical allreduce.

The equivalence tests use integer-valued float32 gradients: both the
flat ring and the hierarchical schedule then compute exact sums, so
their outputs must be bit-identical even though their floating-point
reduction orders differ.
"""

import numpy as np
import pytest

from repro.collectives import (hierarchical_allreduce,
                               hierarchical_wire_bytes, rack_uplink_bytes,
                               ring_allreduce, ring_allreduce_wire_bytes,
                               halving_doubling_wire_bytes)
from repro.core import RdmaCommRuntime
from repro.graph import GraphBuilder, Session
from repro.simnet import Cluster

from .test_fragments import run_fragment, worker_inputs


def _integer_arrays(n, size=24, seed=0):
    rng = np.random.default_rng(seed=seed)
    return [rng.integers(-8, 8, size=size).astype(np.float32)
            for _ in range(n)]


@pytest.mark.parametrize("n,hosts_per_rack", [
    (4, 2),   # 2 racks of 2
    (6, 2),   # 3 racks of 2
    (6, 3),   # 2 racks of 3
    (8, 2),   # 4 racks of 2
    (8, 4),   # 2 racks of 4
])
def test_hierarchical_sums_exactly(n, hosts_per_rack):
    arrays = _integer_arrays(n, seed=n * 10 + hosts_per_rack)
    expected = np.sum(arrays, axis=0)
    builder = GraphBuilder(f"hier{n}x{hosts_per_rack}")
    inputs, devices = worker_inputs(builder, arrays)
    outputs = hierarchical_allreduce(builder, inputs, devices,
                                     hosts_per_rack=hosts_per_rack)
    session = run_fragment(builder, devices)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)


@pytest.mark.parametrize("n,hosts_per_rack", [(4, 2), (8, 4)])
def test_hierarchical_matches_flat_ring_bitwise(n, hosts_per_rack):
    # Integer-valued inputs: both schedules are exact, so the tensors
    # must agree bit for bit despite different reduction orders.
    arrays = _integer_arrays(n, seed=777 + n)

    ring_builder = GraphBuilder(f"ring{n}")
    ring_in, ring_dev = worker_inputs(ring_builder, arrays)
    ring_out = ring_allreduce(ring_builder, ring_in, ring_dev)
    ring_session = run_fragment(ring_builder, ring_dev)

    hier_builder = GraphBuilder(f"hier{n}")
    hier_in, hier_dev = worker_inputs(hier_builder, arrays)
    hier_out = hierarchical_allreduce(hier_builder, hier_in, hier_dev,
                                      hosts_per_rack=hosts_per_rack)
    hier_session = run_fragment(hier_builder, hier_dev)

    for r_out, h_out in zip(ring_out, hier_out):
        ring_tensor = ring_session.numpy(r_out.node.name, r_out.index)
        hier_tensor = hier_session.numpy(h_out.node.name, h_out.index)
        assert ring_tensor.tobytes() == hier_tensor.tobytes()


@pytest.mark.parametrize("algorithm", ["ring", "halving-doubling"])
def test_hierarchical_inter_algorithms(algorithm):
    # 8 workers, 2 racks of 4: exercise both inter-rack collectives.
    arrays = _integer_arrays(8, seed=31)
    expected = np.sum(arrays, axis=0)
    builder = GraphBuilder(f"hier-inter-{algorithm}")
    inputs, devices = worker_inputs(builder, arrays)
    outputs = hierarchical_allreduce(builder, inputs, devices,
                                     hosts_per_rack=4,
                                     inter_algorithm=algorithm)
    session = run_fragment(builder, devices)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)


def test_single_rack_degenerates_to_ring():
    # hosts_per_rack >= n: one rack, so the builder must emit a plain
    # intra-rack ring (no inter phase, no concat wrapper).
    arrays = _integer_arrays(4, seed=4)
    hier = GraphBuilder("one-rack")
    inputs, devices = worker_inputs(hier, arrays)
    outputs = hierarchical_allreduce(hier, inputs, devices, hosts_per_rack=8)
    ring = GraphBuilder("flat")
    ring_in, ring_dev = worker_inputs(ring, arrays)
    ring_allreduce(ring, ring_in, ring_dev)
    ring_graph = ring.finalize()
    cluster = Cluster(len(devices))
    hosts = {dev: cluster.hosts[i] for i, dev in enumerate(devices)}
    graph = hier.finalize()
    assert (len(graph.topological_order())
            == len(ring_graph.topological_order()))
    session = Session(cluster, graph, hosts, comm=RdmaCommRuntime())
    session.run(iterations=1)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), np.sum(arrays, axis=0))


def test_one_host_racks_degenerate_to_flat_inter():
    arrays = _integer_arrays(4, seed=9)
    builder = GraphBuilder("singleton-racks")
    inputs, devices = worker_inputs(builder, arrays)
    outputs = hierarchical_allreduce(builder, inputs, devices,
                                     hosts_per_rack=1)
    session = run_fragment(builder, devices)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), np.sum(arrays, axis=0))


def test_uneven_racks_rejected():
    builder = GraphBuilder("uneven-racks")
    arrays = _integer_arrays(6, seed=6)
    inputs, devices = worker_inputs(builder, arrays)
    with pytest.raises(ValueError, match="tile into racks"):
        hierarchical_allreduce(builder, inputs, devices, hosts_per_rack=4)
    with pytest.raises(ValueError, match="tile into racks"):
        hierarchical_wire_bytes(1 << 20, 6, 4)


def test_wire_bytes_predictor_structure():
    M = 64 << 20
    # Degenerate shapes mirror the builder's fallbacks exactly.
    assert hierarchical_wire_bytes(M, 1, 4) == 0.0
    assert (hierarchical_wire_bytes(M, 4, 8)
            == ring_allreduce_wire_bytes(M, 4))
    assert (hierarchical_wire_bytes(M, 4, 1)
            == ring_allreduce_wire_bytes(M, 4))
    assert (hierarchical_wire_bytes(M, 4, 1, "halving-doubling")
            == halving_doubling_wire_bytes(M, 4))
    # Multi-rack: intra share plus a 1/H share of the inter collective.
    h, racks = 8, 4
    n = h * racks
    expected = (2.0 * M * (h - 1) / h
                + ring_allreduce_wire_bytes(M, racks) / h)
    assert hierarchical_wire_bytes(M, n, h) == pytest.approx(expected)
    # With a ring inter-collective the per-worker volume equals the
    # flat ring's bandwidth-optimal 2·M·(N-1)/N exactly — the
    # hierarchical win is *where* the bytes flow (mostly intra-rack),
    # not how many there are.
    assert (hierarchical_wire_bytes(M, n, h)
            == ring_allreduce_wire_bytes(M, n))


def test_rack_uplink_bytes_analytic():
    M = 48 << 20
    assert rack_uplink_bytes(M, 1) == 0.0
    assert rack_uplink_bytes(M, 4) == pytest.approx(2.0 * M * 3 / 4)
    # Approaches 2M from below as racks grow.
    assert rack_uplink_bytes(M, 64) < 2.0 * M
