"""Tests for gradient bucketization and chunk partitioning."""

import pytest

from repro.collectives import (DEFAULT_FUSION_BYTES, chunk_ranges,
                               plan_buckets)
from repro.models import get_model
from repro.models.spec import VariableSpec


def var(name, elements):
    return VariableSpec(name=name, shape=(elements,))


class TestPlanBuckets:
    def test_greedy_fill_in_order(self):
        # 3 x 100B vars fit a 400B bucket; the 4th opens a new one.
        variables = [var(f"v{i}", 25) for i in range(4)]
        buckets = plan_buckets(variables, fusion_bytes=300)
        assert [b.num_variables for b in buckets] == [3, 1]
        assert [v.name for v in buckets[0].variables] == ["v0", "v1", "v2"]
        assert [b.index for b in buckets] == [0, 1]

    def test_exact_fit_does_not_split(self):
        variables = [var("a", 25), var("b", 25)]
        (bucket,) = plan_buckets(variables, fusion_bytes=200)
        assert bucket.nbytes == 200

    def test_oversized_variable_spills_alone(self):
        variables = [var("small0", 10), var("huge", 1000), var("small1", 10)]
        buckets = plan_buckets(variables, fusion_bytes=100)
        assert [tuple(v.name for v in b.variables) for b in buckets] == [
            ("small0",), ("huge",), ("small1",)]

    def test_order_preserved_across_spill(self):
        variables = [var("a", 10), var("b", 10), var("huge", 1000),
                     var("c", 10)]
        buckets = plan_buckets(variables, fusion_bytes=100)
        flattened = [v.name for b in buckets for v in b.variables]
        assert flattened == ["a", "b", "huge", "c"]

    def test_bucket_properties(self):
        (bucket,) = plan_buckets([var("a", 3), var("b", 5)],
                                 fusion_bytes=1024)
        assert bucket.num_elements == 8
        assert bucket.nbytes == 32
        assert bucket.num_variables == 2

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_buckets([var("a", 1)], fusion_bytes=0)

    def test_empty_input(self):
        assert plan_buckets([], fusion_bytes=1024) == []

    def test_oversized_variable_at_head(self):
        # A spill as the very first variable must not leave an empty
        # leading bucket behind.
        variables = [var("huge", 1000), var("a", 10), var("b", 10)]
        buckets = plan_buckets(variables, fusion_bytes=100)
        assert [tuple(v.name for v in b.variables) for b in buckets] == [
            ("huge",), ("a", "b")]

    def test_oversized_variable_at_tail(self):
        variables = [var("a", 10), var("huge", 1000)]
        buckets = plan_buckets(variables, fusion_bytes=100)
        assert [tuple(v.name for v in b.variables) for b in buckets] == [
            ("a",), ("huge",)]

    def test_minimal_budget_isolates_every_variable(self):
        # fusion_bytes=1: every variable exceeds the budget, so each
        # spills into its own single-variable bucket, order kept.
        variables = [var(f"v{i}", 4) for i in range(5)]
        buckets = plan_buckets(variables, fusion_bytes=1)
        assert [b.num_variables for b in buckets] == [1] * 5
        assert [v.name for b in buckets for v in b.variables] == [
            f"v{i}" for i in range(5)]

    def test_indices_sequential_after_spill(self):
        variables = [var("a", 10), var("huge", 1000), var("b", 10),
                     var("also_huge", 2000), var("c", 10)]
        buckets = plan_buckets(variables, fusion_bytes=100)
        assert [b.index for b in buckets] == list(range(len(buckets)))

    def test_priority_is_flush_order(self):
        # Later buckets hold earlier layers' gradients (backward walks
        # the model back-to-front), so they are needed sooner next
        # forward: priority == bucket index.
        variables = [var(f"v{i}", 25) for i in range(6)]
        buckets = plan_buckets(variables, fusion_bytes=200)
        assert len(buckets) > 1
        assert [b.priority for b in buckets] == [b.index for b in buckets]
        assert buckets[-1].priority == max(b.priority for b in buckets)

    def test_real_model_covers_all_variables(self):
        spec = get_model("VGGNet-16")
        buckets = plan_buckets(spec.variables,
                               fusion_bytes=DEFAULT_FUSION_BYTES)
        assert sum(b.nbytes for b in buckets) == spec.model_bytes
        assert all(b.nbytes <= DEFAULT_FUSION_BYTES or b.num_variables == 1
                   for b in buckets)


class TestChunkRanges:
    def test_even_split(self):
        assert chunk_ranges(12, 4) == [(0, 3), (3, 3), (6, 3), (9, 3)]

    def test_uneven_split_front_loads_extra(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 3), (7, 3)]
        assert sum(size for _, size in ranges) == 10

    def test_single_chunk(self):
        assert chunk_ranges(7, 1) == [(0, 7)]

    def test_chunks_cover_without_overlap(self):
        ranges = chunk_ranges(17, 5)
        end = 0
        for begin, size in ranges:
            assert begin == end and size >= 1
            end = begin + size
        assert end == 17

    def test_errors(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)
        with pytest.raises(ValueError):
            chunk_ranges(3, 4)
