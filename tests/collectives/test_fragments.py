"""Numeric and structural tests for the collective graph fragments.

The numeric tests run the fragments end-to-end: one simulated host per
worker, chunk transfers over the zero-copy RDMA runtime, and exact
equality against the expected elementwise sum.
"""

import numpy as np
import pytest

from repro.collectives import (halving_doubling_allreduce,
                               halving_doubling_wire_bytes, ring_all_gather,
                               ring_allreduce, ring_allreduce_wire_bytes,
                               ring_reduce_scatter)
from repro.collectives.bucketing import chunk_ranges
from repro.core import RdmaCommRuntime
from repro.graph import GraphBuilder, Session
from repro.graph.partition import partition
from repro.simnet import Cluster


def worker_inputs(builder, arrays):
    """One constant per worker, each placed on its own device."""
    devices = [f"worker{i}" for i in range(len(arrays))]
    inputs = [builder.constant(np.asarray(a, dtype=np.float32),
                               name=f"in{i}", device=dev)
              for i, (a, dev) in enumerate(zip(arrays, devices))]
    return inputs, devices


def run_fragment(builder, devices):
    cluster = Cluster(len(devices))
    hosts = {dev: cluster.hosts[i] for i, dev in enumerate(devices)}
    session = Session(cluster, builder.finalize(), hosts,
                      comm=RdmaCommRuntime())
    session.run(iterations=1)
    return session


@pytest.mark.parametrize("n", [2, 3, 4])
def test_ring_allreduce_sums_exactly(n):
    rng = np.random.default_rng(seed=n)
    arrays = [rng.integers(-8, 8, size=12).astype(np.float32)
              for _ in range(n)]
    expected = np.sum(arrays, axis=0)
    builder = GraphBuilder(f"ring{n}")
    inputs, devices = worker_inputs(builder, arrays)
    outputs = ring_allreduce(builder, inputs, devices)
    session = run_fragment(builder, devices)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_halving_doubling_sums_exactly(n):
    # 3 and 5 exercise the non-power-of-two pre/post folding phases.
    rng = np.random.default_rng(seed=100 + n)
    arrays = [rng.integers(-8, 8, size=16).astype(np.float32)
              for _ in range(n)]
    expected = np.sum(arrays, axis=0)
    builder = GraphBuilder(f"hd{n}")
    inputs, devices = worker_inputs(builder, arrays)
    outputs = halving_doubling_allreduce(builder, inputs, devices)
    session = run_fragment(builder, devices)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)


def test_ring_allreduce_uneven_chunks():
    # 10 elements over 3 workers: chunks of 4/3/3, no padding.
    arrays = [np.arange(10, dtype=np.float32) * (i + 1) for i in range(3)]
    expected = np.sum(arrays, axis=0)
    builder = GraphBuilder("uneven")
    inputs, devices = worker_inputs(builder, arrays)
    outputs = ring_allreduce(builder, inputs, devices)
    session = run_fragment(builder, devices)
    for out in outputs:
        np.testing.assert_array_equal(
            session.numpy(out.node.name, out.index), expected)


def test_reduce_scatter_ownership_and_values():
    n = 4
    arrays = [np.arange(8, dtype=np.float32) + 10 * i for i in range(n)]
    expected = np.sum(arrays, axis=0)
    ranges = chunk_ranges(8, n)
    builder = GraphBuilder("rs")
    inputs, devices = worker_inputs(builder, arrays)
    owned = ring_reduce_scatter(builder, inputs, devices)
    session = run_fragment(builder, devices)
    for i, ref in enumerate(owned):
        assert ref.chunk == (i + 1) % n
        assert (ref.begin, ref.size) == ranges[ref.chunk]
        np.testing.assert_array_equal(
            session.numpy(ref.value.node.name, ref.value.index),
            expected[ref.begin:ref.begin + ref.size])


def test_all_gather_replicates_every_contribution():
    arrays = [np.full(4, i, dtype=np.float32) for i in range(3)]
    builder = GraphBuilder("ag")
    inputs, devices = worker_inputs(builder, arrays)
    gathered = ring_all_gather(builder, inputs, devices)
    session = run_fragment(builder, devices)
    for i in range(3):
        for j in range(3):
            out = gathered[i][j]
            np.testing.assert_array_equal(
                session.numpy(out.node.name, out.index), arrays[j])


class TestSingleWorker:
    def test_ring_is_identity_noop(self):
        builder = GraphBuilder("solo")
        inputs, devices = worker_inputs(builder, [np.ones(4)])
        outputs = ring_allreduce(builder, inputs, devices)
        assert outputs == list(inputs)
        # No cross-device edges: the partitioner emits zero transfers.
        assert partition(builder.finalize()).transfers == []

    def test_halving_doubling_is_noop(self):
        builder = GraphBuilder("solo-hd")
        inputs, devices = worker_inputs(builder, [np.ones(4)])
        assert halving_doubling_allreduce(
            builder, inputs, devices) == list(inputs)

    def test_reduce_scatter_owns_whole_buffer(self):
        builder = GraphBuilder("solo-rs")
        inputs, devices = worker_inputs(builder, [np.ones(6)])
        (ref,) = ring_reduce_scatter(builder, inputs, devices)
        assert (ref.chunk, ref.begin, ref.size) == (0, 0, 6)
        assert ref.value is inputs[0]


class TestErrors:
    def test_input_device_count_mismatch(self):
        builder = GraphBuilder()
        inputs, _ = worker_inputs(builder, [np.ones(4), np.ones(4)])
        with pytest.raises(ValueError, match="2 inputs for 3"):
            ring_allreduce(builder, inputs, ["a", "b", "c"])

    def test_empty_participants(self):
        with pytest.raises(ValueError, match="at least one"):
            ring_allreduce(GraphBuilder(), [], [])

    def test_mismatched_shapes(self):
        builder = GraphBuilder()
        inputs, devices = worker_inputs(builder, [np.ones(4), np.ones(5)])
        with pytest.raises(ValueError, match="mismatched"):
            ring_allreduce(builder, inputs, devices)

    def test_non_flat_buffer_rejected(self):
        builder = GraphBuilder()
        inputs, devices = worker_inputs(builder, [np.ones((2, 2)),
                                                  np.ones((2, 2))])
        with pytest.raises(ValueError, match="flat"):
            ring_allreduce(builder, inputs, devices)

    def test_buffer_smaller_than_workers(self):
        builder = GraphBuilder()
        inputs, devices = worker_inputs(builder, [np.ones(2)] * 3)
        with pytest.raises(ValueError):
            ring_allreduce(builder, inputs, devices)

    def test_halving_doubling_buffer_too_small(self):
        builder = GraphBuilder()
        inputs, devices = worker_inputs(builder, [np.ones(2)] * 4)
        with pytest.raises(ValueError, match="too small"):
            halving_doubling_allreduce(builder, inputs, devices)


class TestWirePredictions:
    def test_ring_formula(self):
        assert ring_allreduce_wire_bytes(1000, 4) == pytest.approx(1500.0)
        assert ring_allreduce_wire_bytes(1000, 1) == 0.0

    def test_halving_doubling_power_of_two_matches_ring(self):
        for n in (2, 4, 8):
            assert halving_doubling_wire_bytes(4096, n) == pytest.approx(
                ring_allreduce_wire_bytes(4096, n))

    def test_halving_doubling_mean_matches_ring(self):
        # The extras' fold/unfold adds 2·B per extra, which exactly
        # balances the core discount: the *mean* per-worker volume is
        # 2·B·(N-1)/N for every N (the load is just skewed onto the
        # folded pairs).
        for n in (3, 5, 6, 7):
            assert halving_doubling_wire_bytes(4096, n) == pytest.approx(
                ring_allreduce_wire_bytes(4096, n))
