"""Unit tests for the one-to-many broadcast schedules."""

import pytest

from repro.collectives import (BROADCAST_MODES, broadcast_hops,
                               downstream_of, root_egress_bytes,
                               upstream_of)


class TestSchedules:
    def test_direct_fans_out_from_root(self):
        assert broadcast_hops(3, "direct") == [(-1, 0), (-1, 1), (-1, 2)]

    def test_chain_pipelines_through_replicas(self):
        assert broadcast_hops(4, "chain") == [(-1, 0), (0, 1), (1, 2), (2, 3)]

    def test_single_replica_schedules_coincide(self):
        assert broadcast_hops(1, "direct") == broadcast_hops(1, "chain")

    def test_every_replica_covered_exactly_once(self):
        for mode in BROADCAST_MODES:
            for replicas in (1, 2, 5, 8):
                hops = broadcast_hops(replicas, mode)
                assert sorted(dst for _, dst in hops) == list(range(replicas))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            broadcast_hops(0, "direct")
        with pytest.raises(ValueError):
            broadcast_hops(2, "tree")


class TestTopologyQueries:
    def test_upstream(self):
        assert upstream_of(4, "direct", 3) == -1
        assert upstream_of(4, "chain", 0) == -1
        assert upstream_of(4, "chain", 3) == 2
        with pytest.raises(ValueError):
            upstream_of(2, "chain", 5)

    def test_downstream(self):
        assert downstream_of(3, "direct", -1) == [0, 1, 2]
        assert downstream_of(3, "direct", 0) == []
        assert downstream_of(3, "chain", -1) == [0]
        assert downstream_of(3, "chain", 1) == [2]
        assert downstream_of(3, "chain", 2) == []

    def test_root_egress(self):
        model = 100
        assert root_egress_bytes(5, "direct", model) == 500
        assert root_egress_bytes(5, "chain", model) == 100
