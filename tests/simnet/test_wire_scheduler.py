"""Tests for the preemptive priority wire scheduler (nic.WireScheduler).

The scheduler is opt-in via ``CostModel.wire_quantum_bytes > 0``; these
tests verify the three properties the priority path must keep:

* uncontended transfers finish at exactly the legacy cost-model time,
* a high-priority transfer preempts a large in-flight one at a quantum
  boundary instead of waiting behind it,
* same-QP verbs still complete in FIFO order even under inverted
  priorities.
"""

from dataclasses import replace

import pytest

from repro.simnet import Cluster, Opcode, WorkRequest
from repro.simnet.costmodel import DEFAULT_COST_MODEL, KB, MB


PRIO_COST = replace(DEFAULT_COST_MODEL, wire_quantum_bytes=64 * KB)


def make_pair(cost=PRIO_COST):
    cluster = Cluster(2, cost=cost)
    a, b = cluster.hosts
    cq_a = a.nic.create_cq()
    cq_b = b.nic.create_cq()
    qp_a = a.nic.create_qp(cq_a)
    qp_b = b.nic.create_qp(cq_b)
    qp_a.connect(qp_b)
    return cluster, a, b, qp_a, qp_b, cq_a, cq_b


def register(host, size):
    buf = host.allocate(size, dense=True)
    region = host.nic.register_memory(buf)
    return buf, region


def write_wr(src, src_mr, dst, dst_mr, size, priority=0, wr_id=0):
    return WorkRequest(opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                       lkey=src_mr.lkey, remote_addr=dst.addr,
                       rkey=dst_mr.rkey, priority=priority, wr_id=wr_id)


class TestUncontendedTiming:
    """Alone on the wire, priority mode must reproduce the legacy clock."""

    @pytest.mark.parametrize("size", [4 * KB, 1 * MB, 32 * MB])
    def test_write_matches_cost_model(self, size):
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        src, src_mr = register(a, size)
        dst, dst_mr = register(b, size)
        qp_a.post_send(write_wr(src, src_mr, dst, dst_mr, size))
        cluster.sim.run()
        (comp,) = cq_a.poll()
        assert comp.ok
        assert comp.timestamp == pytest.approx(
            cluster.cost.rdma_write_time(size), rel=1e-12)

    def test_read_matches_cost_model(self):
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        size = 1 * MB
        src, src_mr = register(b, size)
        dst, dst_mr = register(a, size)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.READ, size=size, local_addr=dst.addr,
            lkey=dst_mr.lkey, remote_addr=src.addr, rkey=src_mr.rkey))
        cluster.sim.run()
        (comp,) = cq_a.poll()
        assert comp.ok
        assert comp.timestamp == pytest.approx(
            cluster.cost.rdma_read_time(size), rel=1e-12)

    def test_payload_still_lands(self):
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        src, src_mr = register(a, 1024)
        dst, dst_mr = register(b, 1024)
        src.write(b"priority-path-bytes")
        qp_a.post_send(write_wr(src, src_mr, dst, dst_mr, 19))
        cluster.sim.run()
        assert cq_a.poll()[0].ok
        assert dst.read(0, 19) == b"priority-path-bytes"


class TestPreemption:
    def test_urgent_small_transfer_preempts_large(self):
        """A 64KB priority-1 WRITE posted mid-flight of a 32MB transfer
        on a *different* QP must finish in near-solo time, not after
        the 32MB transfer drains."""
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        # second QP so per-QP FIFO chaining does not serialize them
        cq2 = a.nic.create_cq()
        qp2 = a.nic.create_qp(cq2)
        qp2_b = b.nic.create_qp(b.nic.create_cq())
        qp2.connect(qp2_b)

        big, small = 32 * MB, 64 * KB
        src1, mr1 = register(a, big)
        dst1, dmr1 = register(b, big)
        src2, mr2 = register(a, small)
        dst2, dmr2 = register(b, small)

        qp_a.post_send(write_wr(src1, mr1, dst1, dmr1, big, wr_id=1))
        solo = cluster.cost.rdma_write_time(small)
        midflight = cluster.cost.rdma_write_time(big) / 2
        cluster.sim.call_at(midflight, lambda: qp2.post_send(
            write_wr(src2, mr2, dst2, dmr2, small, priority=1, wr_id=2)))
        cluster.sim.run()

        (small_comp,) = cq2.poll()
        (big_comp,) = cq_a.poll()
        small_elapsed = small_comp.timestamp - midflight
        # must slot in at the big transfer's next quantum boundary
        # (a 32MB transfer is sliced into size/max_quanta chunks), not
        # behind its ~16MB of remaining bytes (>1300us at 100 Gbps)
        big_quantum = max(cluster.cost.wire_quantum_bytes,
                          -(-big // cluster.cost.wire_max_quanta))
        assert small_elapsed < solo + 2 * (
            big_quantum / cluster.cost.rdma_bandwidth)
        remaining_drain = (big / 2) / cluster.cost.rdma_bandwidth
        assert small_elapsed < remaining_drain / 2
        # the big transfer is delayed only by roughly the stolen quanta
        assert big_comp.timestamp < cluster.cost.rdma_write_time(big) * 1.01

    def test_equal_priority_is_fifo(self):
        """Without a priority difference the second transfer waits."""
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        cq2 = a.nic.create_cq()
        qp2 = a.nic.create_qp(cq2)
        qp2_b = b.nic.create_qp(b.nic.create_cq())
        qp2.connect(qp2_b)

        big, small = 4 * MB, 64 * KB
        src1, mr1 = register(a, big)
        dst1, dmr1 = register(b, big)
        src2, mr2 = register(a, small)
        dst2, dmr2 = register(b, small)

        qp_a.post_send(write_wr(src1, mr1, dst1, dmr1, big, wr_id=1))
        midflight = cluster.cost.rdma_write_time(big) / 2
        cluster.sim.call_at(midflight, lambda: qp2.post_send(
            write_wr(src2, mr2, dst2, dmr2, small, priority=0, wr_id=2)))
        cluster.sim.run()

        (small_comp,) = cq2.poll()
        # equal priority: the big transfer's earlier sequence wins every
        # quantum, so the small one completes only after it drains
        assert small_comp.timestamp > cluster.cost.rdma_write_time(big)


class TestQpOrdering:
    def test_same_qp_fifo_survives_inverted_priorities(self):
        """On one QP, a low-priority verb posted first must complete
        before a high-priority verb posted second (RC ordering)."""
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        size = 1 * MB
        src1, mr1 = register(a, size)
        dst1, dmr1 = register(b, size)
        src2, mr2 = register(a, size)
        dst2, dmr2 = register(b, size)
        qp_a.post_send(write_wr(src1, mr1, dst1, dmr1, size,
                                priority=0, wr_id=1))
        qp_a.post_send(write_wr(src2, mr2, dst2, dmr2, size,
                                priority=9, wr_id=2))
        cluster.sim.run()
        comps = cq_a.poll()
        assert [c.wr_id for c in comps] == [1, 2]
        assert comps[0].timestamp <= comps[1].timestamp

    def test_work_conservation(self):
        """Two back-to-back transfers take total wire time, no gaps."""
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        size = 1 * MB
        src1, mr1 = register(a, size)
        dst1, dmr1 = register(b, size)
        src2, mr2 = register(a, size)
        dst2, dmr2 = register(b, size)
        qp_a.post_send(write_wr(src1, mr1, dst1, dmr1, size, wr_id=1))
        qp_a.post_send(write_wr(src2, mr2, dst2, dmr2, size, wr_id=2))
        cluster.sim.run()
        comps = cq_a.poll()
        cost = cluster.cost
        # the second transfer streams right behind the first: one extra
        # size/bandwidth of wire occupancy, not a full rdma_write_time
        upper = (cost.rdma_write_time(size) + size / cost.rdma_bandwidth
                 + cost.rdma_verb_overhead + cost.rdma_completion_overhead)
        assert comps[1].timestamp <= upper + 1e-9

    def test_bytes_counted_once(self):
        cluster, a, b, qp_a, _, cq_a, _ = make_pair()
        size = 2 * MB
        src, mr = register(a, size)
        dst, dmr = register(b, size)
        qp_a.post_send(write_wr(src, mr, dst, dmr, size))
        cluster.sim.run()
        assert cq_a.poll()[0].ok
        assert a.nic.egress_sched.bytes_carried == size
        assert b.nic.ingress_sched.bytes_carried == size


class TestLegacyModeUntouched:
    def test_quantum_zero_keeps_pipes(self):
        cluster, a, b, qp_a, _, cq_a, _ = make_pair(cost=DEFAULT_COST_MODEL)
        assert a.nic.egress_sched is None
        assert a.nic.ingress_sched is None
        size = 1 * MB
        src, mr = register(a, size)
        dst, dmr = register(b, size)
        qp_a.post_send(write_wr(src, mr, dst, dmr, size))
        cluster.sim.run()
        (comp,) = cq_a.poll()
        assert comp.timestamp == pytest.approx(
            cluster.cost.rdma_write_time(size), rel=1e-12)
