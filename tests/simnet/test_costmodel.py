"""Unit tests for the cost model: monotonicity and calibration sanity."""

import dataclasses

import pytest

from repro.simnet.costmodel import CostModel, DEFAULT_COST_MODEL, KB, MB, GB


@pytest.fixture
def cm():
    return DEFAULT_COST_MODEL


class TestBasicShapes:
    def test_all_costs_positive(self, cm):
        for fn in (cm.rdma_write_time, cm.rdma_read_time, cm.rdma_send_time,
                   cm.mr_register_time, cm.memcpy_time, cm.malloc_time,
                   cm.serialize_time, cm.deserialize_time, cm.tcp_send_time,
                   cm.tcp_wire_time, cm.tcp_recv_time, cm.pcie_copy_time):
            assert fn(1) > 0
            assert fn(1 * MB) > 0

    def test_monotone_in_size(self, cm):
        for fn in (cm.rdma_write_time, cm.rdma_read_time, cm.memcpy_time,
                   cm.serialize_time, cm.tcp_send_time, cm.tcp_wire_time,
                   cm.pcie_copy_time, cm.mr_register_time):
            previous = 0.0
            for size in (1, 1 * KB, 1 * MB, 64 * MB):
                value = fn(size)
                assert value >= previous, fn.__name__
                previous = value

    def test_read_pays_extra_rtt(self, cm):
        assert (cm.rdma_read_time(4 * KB) - cm.rdma_write_time(4 * KB)
                == pytest.approx(cm.rdma_read_extra_rtt))

    def test_small_rdma_latency_bound(self, cm):
        """Small transfers dominated by latency, not bandwidth (~2us RTT)."""
        assert cm.rdma_write_time(64) < 5e-6

    def test_large_rdma_bandwidth_bound(self, cm):
        """1 GB at 100 Gbps is ~86 ms; overheads negligible."""
        t = cm.rdma_write_time(1 * GB)
        assert t == pytest.approx(1 * GB / cm.rdma_bandwidth, rel=0.01)

    def test_tcp_wire_slower_than_rdma_wire(self, cm):
        assert cm.tcp_wire_time(1 * MB) > cm.rdma_wire_time(1 * MB)

    def test_registration_dwarfs_small_write(self, cm):
        """Per-tensor registration would dominate transfers (paper §3.4)."""
        assert cm.mr_register_time(64 * KB) > 20 * cm.rdma_write_time(64 * KB)


class TestEndToEndRatios:
    """The mechanism rankings the paper's Figure 8 depends on."""

    def grpc_tcp_cost(self, cm, size):
        return (cm.serialize_time(size) + cm.tcp_send_time(size)
                + cm.tcp_wire_time(size) + cm.tcp_recv_time(size)
                + cm.deserialize_time(size) + cm.memcpy_time(size))

    def grpc_rdma_cost(self, cm, size):
        # serialize into a private buffer, copy in, rdma, copy out, deserialize
        return (cm.serialize_time(size) + cm.memcpy_time(size)
                + cm.rdma_write_time(size) + cm.memcpy_time(size)
                + cm.deserialize_time(size))

    def rdma_cp_cost(self, cm, size):
        return cm.memcpy_time(size) + cm.rdma_write_time(size)

    def rdma_zerocp_cost(self, cm, size):
        return cm.rdma_write_time(size)

    @pytest.mark.parametrize("size", [64 * KB, 1 * MB, 64 * MB])
    def test_mechanism_ranking(self, cm, size):
        assert (self.rdma_zerocp_cost(cm, size)
                < self.rdma_cp_cost(cm, size)
                < self.grpc_rdma_cost(cm, size)
                < self.grpc_tcp_cost(cm, size))

    def test_zerocp_vs_cp_gap_within_paper_band(self, cm):
        """Paper: RDMA.zerocp outperforms RDMA.cp by 1.2x-1.8x."""
        for size in (1 * MB, 16 * MB, 256 * MB):
            ratio = self.rdma_cp_cost(cm, size) / self.rdma_zerocp_cost(cm, size)
            assert 1.1 < ratio < 2.5

    def test_zerocp_vs_grpc_rdma_gap_everywhere(self, cm):
        """The gRPC.RDMA penalty stays in the paper's 1.3x-14x band at
        both ends of the size range (per-message overheads dominate
        small messages; per-byte serialization dominates large ones)."""
        for size in (64 * KB, 1 * MB, 256 * MB):
            gap = (self.grpc_rdma_cost(cm, size)
                   / self.rdma_zerocp_cost(cm, size))
            assert 1.3 < gap < 20, size


class TestScaled:
    def test_scaled_multiplies_float(self, cm):
        slow = cm.scaled(rdma_bandwidth=0.5)
        assert slow.rdma_bandwidth == pytest.approx(cm.rdma_bandwidth / 2)

    def test_scaled_keeps_int_fields_int(self, cm):
        bigger = cm.scaled(mr_table_capacity=2.0)
        assert isinstance(bigger.mr_table_capacity, int)
        assert bigger.mr_table_capacity == 2 * cm.mr_table_capacity

    def test_scaled_returns_new_instance(self, cm):
        other = cm.scaled(memcpy_bandwidth=1.0)
        assert other is not cm
        assert other == cm  # identity scaling preserves equality

    def test_frozen(self, cm):
        with pytest.raises(dataclasses.FrozenInstanceError):
            cm.rdma_bandwidth = 1.0
