"""Determinism: identical configurations produce identical results.

The whole reproduction methodology rests on the simulator being a
pure function of its inputs — no wall-clock, no unseeded randomness —
so experiments are exactly repeatable and diffs between mechanisms are
attributable to the mechanisms alone.
"""

import numpy as np

from repro.distributed import run_training_benchmark
from repro.graph import GraphBuilder, Session, minimize
from repro.models import get_model
from repro.simnet import Cluster
from repro.workloads import run_microbench


class TestDeterminism:
    def test_microbench_repeatable(self):
        a = run_microbench("RDMA", 4 << 20, iterations=3)
        b = run_microbench("RDMA", 4 << 20, iterations=3)
        assert a.transfer_seconds == b.transfer_seconds

    def test_training_benchmark_repeatable(self):
        spec = get_model("GRU")
        a = run_training_benchmark(spec, "gRPC.RDMA", num_servers=2,
                                   batch_size=8, iterations=3)
        b = run_training_benchmark(spec, "gRPC.RDMA", num_servers=2,
                                   batch_size=8, iterations=3)
        assert a.stats.iteration_times == b.stats.iteration_times

    def test_iteration_times_converge_to_steady_state(self):
        spec = get_model("FCN-5")
        result = run_training_benchmark(spec, "RDMA", num_servers=2,
                                        batch_size=8, iterations=6)
        steady = result.stats.iteration_times[1:]
        assert max(steady) - min(steady) < 0.02 * max(steady)

    def test_real_training_bitwise_repeatable(self):
        def run_once():
            cluster = Cluster(1)
            rng = np.random.default_rng(5)
            b = GraphBuilder()
            x = b.placeholder([8, 4], name="x")
            y = b.placeholder([8, 2], name="y")
            w = b.variable([4, 2], name="w",
                           initializer=rng.normal(0, 0.2, (4, 2)))
            loss, _ = b.softmax_cross_entropy(b.matmul(x, w), y,
                                              name="loss")
            minimize(b, loss, lr=0.3)
            session = Session(cluster, b.finalize(),
                              {"device0": cluster.hosts[0]})
            feeds = {"x": rng.normal(size=(8, 4)).astype(np.float32),
                     "y": np.eye(8, 2, dtype=np.float32)}
            out = []
            for _ in range(5):
                session.run(feeds=feeds)
                out.append(session.numpy("loss").tobytes())
            return out, cluster.sim.now

        first, t1 = run_once()
        second, t2 = run_once()
        assert first == second
        assert t1 == t2
