"""Determinism: identical configurations produce identical results.

The whole reproduction methodology rests on the simulator being a
pure function of its inputs — no wall-clock, no unseeded randomness —
so experiments are exactly repeatable and diffs between mechanisms are
attributable to the mechanisms alone.
"""

import dataclasses

import numpy as np

from repro.distributed import run_training_benchmark
from repro.graph import GraphBuilder, Session, minimize
from repro.models import get_model
from repro.simnet import Cluster, FaultInjector
from repro.workloads import run_microbench


class TestDeterminism:
    def test_microbench_repeatable(self):
        a = run_microbench("RDMA", 4 << 20, iterations=3)
        b = run_microbench("RDMA", 4 << 20, iterations=3)
        assert a.transfer_seconds == b.transfer_seconds

    def test_training_benchmark_repeatable(self):
        spec = get_model("GRU")
        a = run_training_benchmark(spec, "gRPC.RDMA", num_servers=2,
                                   batch_size=8, iterations=3)
        b = run_training_benchmark(spec, "gRPC.RDMA", num_servers=2,
                                   batch_size=8, iterations=3)
        assert a.stats.iteration_times == b.stats.iteration_times

    def test_iteration_times_converge_to_steady_state(self):
        spec = get_model("FCN-5")
        result = run_training_benchmark(spec, "RDMA", num_servers=2,
                                        batch_size=8, iterations=6)
        steady = result.stats.iteration_times[1:]
        assert max(steady) - min(steady) < 0.02 * max(steady)

    def test_real_training_bitwise_repeatable(self):
        def run_once():
            cluster = Cluster(1)
            rng = np.random.default_rng(5)
            b = GraphBuilder()
            x = b.placeholder([8, 4], name="x")
            y = b.placeholder([8, 2], name="y")
            w = b.variable([4, 2], name="w",
                           initializer=rng.normal(0, 0.2, (4, 2)))
            loss, _ = b.softmax_cross_entropy(b.matmul(x, w), y,
                                              name="loss")
            minimize(b, loss, lr=0.3)
            session = Session(cluster, b.finalize(),
                              {"device0": cluster.hosts[0]})
            feeds = {"x": rng.normal(size=(8, 4)).astype(np.float32),
                     "y": np.eye(8, 2, dtype=np.float32)}
            out = []
            for _ in range(5):
                session.run(feeds=feeds)
                out.append(session.numpy("loss").tobytes())
            return out, cluster.sim.now

        first, t1 = run_once()
        second, t2 = run_once()
        assert first == second
        assert t1 == t2


class TestFaultDeterminism:
    """The fault plane is part of the pure function: same seed, same
    schedule; no spec, no perturbation at all."""

    SPEC = "drop:p=0.06;blackhole:p=0.03;straggler:p=0.05,delay=8e-4"

    def _run(self, **kwargs):
        spec = get_model("FCN-5")
        return run_training_benchmark(spec, "RDMA", num_servers=2,
                                      batch_size=8, iterations=3, **kwargs)

    def test_same_fault_seed_bitwise_repeatable(self):
        a = self._run(fault_spec=self.SPEC, fault_seed=17)
        b = self._run(fault_spec=self.SPEC, fault_seed=17)
        assert a.stats.iteration_times == b.stats.iteration_times
        assert a.stats.faults is not None
        # The whole RunStats — fault log included — must match, not
        # just the timings.
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)

    def test_fault_seed_changes_the_schedule(self):
        logs = {
            str(self._run(fault_spec=self.SPEC,
                          fault_seed=seed).stats.faults["injected"]["log"])
            for seed in range(4)
        }
        assert len(logs) > 1

    def test_injector_off_is_bit_identical(self):
        """No spec, empty spec, and pre-fault-plumbing behaviour all
        coincide: the chaos layer is free when unused."""
        plain = self._run()
        empty = self._run(fault_spec="")
        assert plain.stats.iteration_times == empty.stats.iteration_times
        assert plain.stats.faults is None and empty.stats.faults is None

    def test_installed_but_empty_injector_is_bit_identical(self):
        def run_session(install):
            cluster = Cluster(2)
            if install:
                cluster.install_faults(FaultInjector([], seed=9))
            from repro.core import RdmaCommRuntime
            rng = np.random.default_rng(5)
            b = GraphBuilder()
            x = b.placeholder([8, 4], name="x", device="worker0")
            w = b.variable([4, 2], name="w", device="ps0",
                           initializer=rng.normal(0, 0.2, (4, 2)))
            b.matmul(x, w, name="out", device="worker0")
            session = Session(cluster, b.finalize(),
                              {"ps0": cluster.hosts[0],
                               "worker0": cluster.hosts[1]},
                              comm=RdmaCommRuntime())
            feeds = {"x": rng.normal(size=(8, 4)).astype(np.float32)}
            stats = session.run(iterations=3, feeds=feeds)
            return stats.iteration_times, cluster.sim.now

        assert run_session(install=False) == run_session(install=True)
