"""Unit tests for the simulated TCP stack."""

import pytest

from repro.simnet import Cluster, Endpoint, TcpError, TcpMessage


@pytest.fixture
def cluster():
    return Cluster(2)


def connect_pair(cluster, port=5000):
    """Returns (client_socket, server_socket) between host 0 and 1."""
    a, b = cluster.hosts
    listener = b.tcp.listen(port)
    client = a.tcp.connect(Endpoint(b.name, port))
    server_holder = []

    def accept():
        sock = yield listener.accept()
        server_holder.append(sock)

    proc = cluster.sim.spawn(accept())
    cluster.sim.run_until_complete(proc)
    return client, server_holder[0]


class TestConnect:
    def test_connect_and_accept(self, cluster):
        client, server = connect_pair(cluster)
        assert client.peer is server
        assert server.peer is client

    def test_connection_refused(self, cluster):
        a, b = cluster.hosts
        with pytest.raises(TcpError, match="refused"):
            a.tcp.connect(Endpoint(b.name, 9999))

    def test_duplicate_listen_rejected(self, cluster):
        b = cluster.hosts[1]
        b.tcp.listen(7000)
        with pytest.raises(TcpError):
            b.tcp.listen(7000)

    def test_unknown_host(self, cluster):
        a = cluster.hosts[0]
        with pytest.raises(KeyError):
            a.tcp.connect(Endpoint("nonexistent", 1))


class TestSendRecv:
    def test_message_roundtrip(self, cluster):
        client, server = connect_pair(cluster)
        got = []

        def sender():
            yield from client.send(TcpMessage(size=5, data=b"hello"))

        def receiver():
            msg = yield from server.recv()
            got.append((cluster.sim.now, msg.data))

        cluster.sim.spawn(sender())
        proc = cluster.sim.spawn(receiver())
        cluster.sim.run_until_complete(proc)
        assert got[0][1] == b"hello"
        assert got[0][0] > 0

    def test_fifo_per_connection(self, cluster):
        client, server = connect_pair(cluster)
        got = []

        def sender():
            for i in range(5):
                yield from client.send(TcpMessage(size=1, data=bytes([i])))

        def receiver():
            for _ in range(5):
                msg = yield from server.recv()
                got.append(msg.data[0])

        cluster.sim.spawn(sender())
        proc = cluster.sim.spawn(receiver())
        cluster.sim.run_until_complete(proc)
        assert got == [0, 1, 2, 3, 4]

    def test_virtual_message_carries_size_only(self, cluster):
        client, server = connect_pair(cluster)
        got = []

        def sender():
            yield from client.send(TcpMessage(size=100 * 1024 * 1024))

        def receiver():
            msg = yield from server.recv()
            got.append(msg)

        cluster.sim.spawn(sender())
        proc = cluster.sim.spawn(receiver())
        cluster.sim.run_until_complete(proc)
        assert got[0].size == 100 * 1024 * 1024
        assert got[0].data is None

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TcpMessage(size=3, data=b"four")

    def test_send_on_closed_raises(self, cluster):
        client, server = connect_pair(cluster)
        client.close()
        with pytest.raises(TcpError):
            # send is a generator; the error surfaces on first step
            next(server.send(TcpMessage(size=1, data=b"x")))

    def test_bidirectional(self, cluster):
        client, server = connect_pair(cluster)
        got = []

        def side_a():
            yield from client.send(TcpMessage(size=4, data=b"ping"))
            msg = yield from client.recv()
            got.append(msg.data)

        def side_b():
            msg = yield from server.recv()
            yield from server.send(TcpMessage(size=4, data=msg.data[::-1]))

        cluster.sim.spawn(side_b())
        proc = cluster.sim.spawn(side_a())
        cluster.sim.run_until_complete(proc)
        assert got == [b"gnip"]


class TestTcpTiming:
    def _transfer_time(self, cluster, size, loopback=False):
        if loopback:
            host = cluster.hosts[0]
            listener = host.tcp.listen(6001)
            client = host.tcp.connect(Endpoint(host.name, 6001))
            holder = []

            def accept():
                sock = yield listener.accept()
                holder.append(sock)

            cluster.sim.run_until_complete(cluster.sim.spawn(accept()))
            server = holder[0]
        else:
            client, server = connect_pair(cluster, port=6000 + size % 100)
        done = []

        def sender():
            yield from client.send(TcpMessage(size=size))

        def receiver():
            yield from server.recv()
            done.append(cluster.sim.now)

        start = cluster.sim.now
        cluster.sim.spawn(sender())
        proc = cluster.sim.spawn(receiver())
        cluster.sim.run_until_complete(proc)
        return done[0] - start

    def test_tcp_slower_than_rdma_for_large_messages(self, cluster):
        size = 16 * 1024 * 1024
        tcp_time = self._transfer_time(cluster, size)
        rdma_time = cluster.cost.rdma_write_time(size)
        assert tcp_time > 2 * rdma_time

    def test_time_scales_with_size(self, cluster):
        small = self._transfer_time(cluster, 64 * 1024)
        cluster2 = Cluster(2)
        large = TestTcpTiming._transfer_time(self, cluster2, 16 * 1024 * 1024)
        assert large > 10 * small

    def test_loopback_skips_wire(self):
        cluster_remote = Cluster(2)
        remote = self._transfer_time(cluster_remote, 1024 * 1024)
        cluster_local = Cluster(1)
        local = self._transfer_time(cluster_local, 1024 * 1024, loopback=True)
        assert local < remote


class TestPipes:
    def test_tcp_fan_in_contention(self):
        cluster = Cluster(3)
        receiver = cluster.hosts[0]
        listener = receiver.tcp.listen(8000)
        size = 16 * 1024 * 1024
        finishes = []

        def server():
            for _ in range(2):
                sock = yield listener.accept()
                cluster.sim.spawn(serve_one(sock))

        def serve_one(sock):
            yield from sock.recv()
            finishes.append(cluster.sim.now)

        def client(host):
            sock = host.tcp.connect(Endpoint(receiver.name, 8000))
            yield from sock.send(TcpMessage(size=size))

        cluster.sim.spawn(server())
        for host in cluster.hosts[1:]:
            cluster.sim.spawn(client(host))
        cluster.sim.run()
        assert len(finishes) == 2
        single = cluster.cost.tcp_wire_time(size)
        assert max(finishes) > 1.5 * single
