"""Unit tests for simulated host memory and RDMA registration."""

import pytest

from repro.simnet.memory import (
    AddressSpace, DenseBacking, MemoryError_, MrTable, VirtualBacking)


class TestDenseBacking:
    def test_roundtrip(self):
        backing = DenseBacking(64)
        backing.write(10, b"hello")
        assert backing.read(10, 5) == b"hello"

    def test_initial_zeroes(self):
        backing = DenseBacking(16)
        assert backing.read(0, 16) == b"\x00" * 16

    def test_out_of_bounds_read(self):
        backing = DenseBacking(8)
        with pytest.raises(MemoryError_):
            backing.read(4, 8)

    def test_out_of_bounds_write(self):
        backing = DenseBacking(8)
        with pytest.raises(MemoryError_):
            backing.write(6, b"xyz")

    def test_read_byte(self):
        backing = DenseBacking(4)
        backing.write(3, b"\x07")
        assert backing.read_byte(3) == 7

    def test_view_is_zero_copy(self):
        backing = DenseBacking(32)
        view = backing.view(8, 4)
        view[:] = 255
        assert backing.read(8, 4) == b"\xff\xff\xff\xff"

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryError_):
            DenseBacking(0)

    def test_write_virtual_leaves_content(self):
        backing = DenseBacking(16)
        backing.write(0, b"abcd")
        backing.write_virtual(0, 4)
        assert backing.read(0, 4) == b"abcd"


class TestVirtualBacking:
    def test_small_write_kept(self):
        backing = VirtualBacking(1 << 30)  # 1 GiB costs no real RAM
        backing.write(100, b"flag")
        assert backing.read(100, 4) == b"flag"

    def test_unwritten_reads_zero(self):
        backing = VirtualBacking(1024)
        assert backing.read(0, 8) == b"\x00" * 8

    def test_large_write_keeps_head_and_tail(self):
        backing = VirtualBacking(1 << 24)
        data = bytes(range(256)) * 1024  # 256 KiB > sparse limit
        backing.write(0, data)
        assert backing.read(0, 64) == data[:64]
        assert backing.read(len(data) - 64, 64) == data[-64:]

    def test_large_write_drops_middle(self):
        backing = VirtualBacking(1 << 24)
        data = b"\xaa" * (256 * 1024)
        backing.write(0, data)
        mid = len(data) // 2
        assert backing.read(mid, 1) == b"\x00"

    def test_bytes_written_accounting(self):
        backing = VirtualBacking(1 << 24)
        backing.write(0, b"x" * 100)
        backing.write_virtual(1000, 5000)
        assert backing.bytes_written == 5100

    def test_bounds_checked(self):
        backing = VirtualBacking(128)
        with pytest.raises(MemoryError_):
            backing.write(120, b"too long!")


class TestAddressSpace:
    def test_allocate_and_resolve(self):
        space = AddressSpace("hostA")
        buf = space.allocate(256)
        found, offset = space.resolve(buf.addr + 10, 4)
        assert found is buf
        assert offset == 10

    def test_distinct_buffers_do_not_overlap(self):
        space = AddressSpace("hostA")
        a = space.allocate(100)
        b = space.allocate(100)
        assert a.end <= b.addr or b.end <= a.addr

    def test_hosts_get_disjoint_ranges(self):
        a = AddressSpace("a").allocate(10)
        b = AddressSpace("b").allocate(10)
        assert abs(a.addr - b.addr) >= (1 << 44) - (1 << 20)

    def test_unmapped_access_faults(self):
        space = AddressSpace("hostA")
        space.allocate(64)
        with pytest.raises(MemoryError_):
            space.resolve(12345, 1)

    def test_resolve_straddling_end_faults(self):
        space = AddressSpace("hostA")
        buf = space.allocate(64)
        with pytest.raises(MemoryError_):
            space.resolve(buf.addr + 60, 8)

    def test_read_write_via_space(self):
        space = AddressSpace("hostA")
        buf = space.allocate(64)
        space.write(buf.addr + 5, b"data")
        assert space.read(buf.addr + 5, 4) == b"data"

    def test_free_then_access_faults(self):
        space = AddressSpace("hostA")
        buf = space.allocate(64)
        space.free(buf)
        with pytest.raises(MemoryError_):
            space.resolve(buf.addr, 1)

    def test_double_free_raises(self):
        space = AddressSpace("hostA")
        buf = space.allocate(64)
        space.free(buf)
        with pytest.raises(MemoryError_):
            space.free(buf)

    def test_dense_flag_controls_backing(self):
        space = AddressSpace("hostA")
        small = space.allocate(1024)
        big = space.allocate(64 * 1024 * 1024)
        forced = space.allocate(64 * 1024 * 1024, dense=True)
        assert isinstance(small.backing, DenseBacking)
        assert isinstance(big.backing, VirtualBacking)
        assert isinstance(forced.backing, DenseBacking)

    def test_zero_size_allocation_rejected(self):
        with pytest.raises(MemoryError_):
            AddressSpace("hostA").allocate(0)

    def test_buffer_read_write_helpers(self):
        buf = AddressSpace("hostA").allocate(32, label="t")
        buf.write(b"abc", offset=1)
        assert buf.read(1, 3) == b"abc"
        assert buf.read_byte(2) == ord("b")
        assert buf.label == "t"


class TestMrTable:
    def _buf(self, size=4096):
        return AddressSpace("h").allocate(size)

    def test_register_returns_keys(self):
        table = MrTable(capacity=4)
        region = table.register(self._buf())
        assert region.lkey == region.rkey
        assert region.registered

    def test_capacity_enforced(self):
        table = MrTable(capacity=2)
        table.register(self._buf())
        table.register(self._buf())
        with pytest.raises(MemoryError_, match="MR table exhausted"):
            table.register(self._buf())

    def test_deregister_frees_slot(self):
        table = MrTable(capacity=1)
        region = table.register(self._buf())
        table.deregister(region)
        assert not region.registered
        table.register(self._buf())  # should not raise

    def test_double_deregister_raises(self):
        table = MrTable(capacity=1)
        region = table.register(self._buf())
        table.deregister(region)
        with pytest.raises(MemoryError_):
            table.deregister(region)

    def test_lookup_validates_rkey(self):
        table = MrTable(capacity=4)
        region = table.register(self._buf())
        with pytest.raises(MemoryError_, match="invalid rkey"):
            table.lookup(region.rkey + 1, region.addr, 10)

    def test_lookup_validates_bounds(self):
        table = MrTable(capacity=4)
        region = table.register(self._buf(100))
        with pytest.raises(MemoryError_, match="outside MR"):
            table.lookup(region.rkey, region.addr + 90, 20)

    def test_lookup_success(self):
        table = MrTable(capacity=4)
        region = table.register(self._buf(100))
        assert table.lookup(region.rkey, region.addr + 10, 50) is region

    def test_len(self):
        table = MrTable(capacity=8)
        assert len(table) == 0
        table.register(self._buf())
        assert len(table) == 1
