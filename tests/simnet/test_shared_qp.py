"""Unit tests for DCT-style shared queue pairs (connection multiplexing).

A :class:`SharedQp` is one send/receive endpoint multiplexed across
every peer: work requests name their destination per-WR
(``WorkRequest.dct_target``) instead of riding a connected pair.  The
tests pin the semantics the transfer protocols depend on:

* per-target FIFO — writes to one destination commit in posting order
  (DCT orders per target stream);
* shared-FIFO head-of-line — the single send queue serializes across
  destinations (the latency trade DCT makes for O(1) QP state);
* O(1) endpoint state — device-level: QPs created per NIC do not grow
  with the peer count in shared mode, and do grow in RC mode;
* loss-free timing equality with RC for a lone transfer, which is what
  makes the golden-clock identity of the distributed suite possible.
"""

import pytest

from repro.core.device import QP_MODES, DeviceError, RdmaDevice
from repro.simnet import Cluster, MemoryError_, Opcode, WorkRequest
from repro.simnet.topology import Endpoint


def register(host, size, dense=None):
    buf = host.allocate(size, dense=dense)
    region = host.nic.register_memory(buf)
    return buf, region


@pytest.fixture
def shared_pair():
    """Two hosts each owning one shared endpoint (never connected)."""
    cluster = Cluster(2)
    a, b = cluster.hosts
    cq_a = a.nic.create_cq()
    cq_b = b.nic.create_cq()
    sq_a = a.nic.create_shared_qp(cq_a)
    sq_b = b.nic.create_shared_qp(cq_b)
    return cluster, a, b, sq_a, sq_b, cq_a, cq_b


class TestSharedQpSemantics:
    def test_write_targets_per_wr(self, shared_pair):
        cluster, a, b, sq_a, sq_b, cq_a, _ = shared_pair
        src, src_mr = register(a, 64)
        dst, dst_mr = register(b, 64)
        src.write(b"dct-bytes")
        sq_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=9, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey,
            dct_target=sq_b))
        cluster.sim.run()
        comps = cq_a.poll()
        assert len(comps) == 1 and comps[0].ok
        assert dst.read(0, 9) == b"dct-bytes"

    def test_post_without_target_raises(self, shared_pair):
        _, a, _, sq_a, _, _, _ = shared_pair
        src, src_mr = register(a, 64)
        with pytest.raises(MemoryError_, match="target"):
            sq_a.post_send(WorkRequest(
                opcode=Opcode.WRITE, size=4, local_addr=src.addr,
                lkey=src_mr.lkey, remote_addr=src.addr, rkey=src_mr.rkey))

    def test_connect_rejected(self, shared_pair):
        _, _, _, sq_a, sq_b, _, _ = shared_pair
        with pytest.raises(MemoryError_, match="connectionless"):
            sq_a.connect(sq_b)

    def test_per_target_fifo_ordering(self, shared_pair):
        """Back-to-back writes to one destination land in post order."""
        cluster, a, b, sq_a, sq_b, cq_a, _ = shared_pair
        src1, mr1 = register(a, 64)
        src2, mr2 = register(a, 64)
        dst, dst_mr = register(b, 64)
        src1.write(b"A" * 64)
        src2.write(b"B" * 64)
        for src, mr in ((src1, mr1), (src2, mr2)):
            sq_a.post_send(WorkRequest(
                opcode=Opcode.WRITE, size=64, local_addr=src.addr,
                lkey=mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey,
                dct_target=sq_b))
        cluster.sim.run()
        comps = cq_a.poll()
        assert [c.ok for c in comps] == [True, True]
        assert comps[0].timestamp <= comps[1].timestamp
        assert dst.read(0, 64) == b"B" * 64  # the later write wins

    def test_shared_send_queue_serializes_across_targets(self):
        """Head-of-line: one endpoint's sends to different peers share
        one egress FIFO — the price of O(1) QP state."""
        cluster = Cluster(3)
        sender = cluster.hosts[0]
        cq = sender.nic.create_cq()
        sq = sender.nic.create_shared_qp(cq)
        size = 8 * 1024 * 1024
        for receiver in cluster.hosts[1:]:
            target = receiver.nic.create_shared_qp(receiver.nic.create_cq())
            src, src_mr = register(sender, size)
            dst, dst_mr = register(receiver, size)
            sq.post_send(WorkRequest(
                opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey,
                dct_target=target))
        cluster.sim.run()
        comps = cq.poll()
        assert len(comps) == 2
        finish = max(c.timestamp for c in comps)
        # Both transfers leave one egress port: ~2x one wire time.
        assert finish > 1.8 * cluster.cost.rdma_write_time(size)

    def test_fan_in_to_one_shared_endpoint(self):
        """Many senders target one endpoint (SRQ-style receive): all
        deliver, serialized on the receiver's ingress."""
        cluster = Cluster(3)
        recv = cluster.hosts[0]
        sink = recv.nic.create_shared_qp(recv.nic.create_cq())
        size = 8 * 1024 * 1024
        cqs = []
        for sender in cluster.hosts[1:]:
            cq = sender.nic.create_cq()
            sq = sender.nic.create_shared_qp(cq)
            src, src_mr = register(sender, size)
            dst, dst_mr = register(recv, size)
            sq.post_send(WorkRequest(
                opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey,
                dct_target=sink))
            cqs.append(cq)
        cluster.sim.run()
        comps = [c for cq in cqs for c in cq.poll()]
        assert len(comps) == 2 and all(c.ok for c in comps)
        assert max(c.timestamp for c in comps) \
            > 1.8 * cluster.cost.rdma_write_time(size)

    def test_lone_write_timing_matches_rc(self):
        """Without contention a shared endpoint's write clock equals a
        connected pair's — the loss-free golden-clock identity."""
        results = []
        for mode in ("rc", "shared"):
            cluster = Cluster(2)
            a, b = cluster.hosts
            cq = a.nic.create_cq()
            size = 4 * 1024 * 1024
            src, src_mr = register(a, size, dense=True)
            dst, dst_mr = register(b, size, dense=True)
            wr = dict(opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                      lkey=src_mr.lkey, remote_addr=dst.addr,
                      rkey=dst_mr.rkey)
            if mode == "rc":
                qp = a.nic.create_qp(cq)
                qp.connect(b.nic.create_qp(b.nic.create_cq()))
                qp.post_send(WorkRequest(**wr))
            else:
                sq = a.nic.create_shared_qp(cq)
                target = b.nic.create_shared_qp(b.nic.create_cq())
                sq.post_send(WorkRequest(**wr, dct_target=target))
            cluster.sim.run()
            results.append(cq.poll()[0].timestamp)
        assert results[0] == results[1]


class TestDeviceQpScaling:
    def _qps_created(self, qp_mode, num_hosts, num_qps_per_peer=2):
        cluster = Cluster(num_hosts)
        devices = []
        for i, host in enumerate(cluster.hosts):
            devices.append(RdmaDevice.create(
                host, num_cqs=1, num_qps_per_peer=num_qps_per_peer,
                local_endpoint=Endpoint(host.name, 7000),
                qp_mode=qp_mode))
        # Full mesh: every device opens a channel to every other.
        for dev in devices:
            for other in devices:
                if other is not dev:
                    dev.get_channel(other.endpoint, 0)
        return [host.nic.qps_created for host in cluster.hosts]

    def test_rc_qps_grow_with_peer_count(self):
        small = self._qps_created("rc", 3)
        large = self._qps_created("rc", 6)
        assert max(large) > max(small)

    def test_shared_qps_constant_in_peer_count(self):
        small = self._qps_created("shared", 3)
        large = self._qps_created("shared", 6)
        # O(1): the data plane is the fixed endpoint pool however many
        # peers the mesh has (control QPs are lazy and unused here).
        assert small == [2] * 3
        assert large == [2] * 6

    def test_qp_mode_validated(self):
        cluster = Cluster(1)
        with pytest.raises(DeviceError, match="qp_mode"):
            RdmaDevice.create(cluster.hosts[0], 1, 1,
                              Endpoint(cluster.hosts[0].name, 7000),
                              qp_mode="dct")
        assert "shared" in QP_MODES

    def test_mixed_mode_mesh_rejected(self):
        cluster = Cluster(2)
        a = RdmaDevice.create(cluster.hosts[0], 1, 1,
                              Endpoint(cluster.hosts[0].name, 7000),
                              qp_mode="shared")
        RdmaDevice.create(cluster.hosts[1], 1, 1,
                          Endpoint(cluster.hosts[1].name, 7000),
                          qp_mode="rc")
        with pytest.raises(DeviceError, match="mismatch"):
            a.get_channel(Endpoint(cluster.hosts[1].name, 7000), 0)
