"""Fabric graph, deterministic ECMP routing, and uplink accounting."""

import pytest

from repro.collectives import rack_uplink_bytes
from repro.distributed import run_training_benchmark
from repro.models.spec import MB, ModelSpec, VariableSpec
from repro.simnet.costmodel import DEFAULT_COST_MODEL
from repro.simnet.fabric import (Fabric, FabricError, build_fat_tree,
                                 rack_groups, rack_of)
from repro.simnet.topology import Cluster


def test_rack_assignment():
    assert [rack_of(i, 2) for i in range(6)] == [0, 0, 1, 1, 2, 2]
    assert rack_groups(5, 2) == [[0, 1], [2, 3], [4]]
    with pytest.raises(FabricError):
        rack_of(0, 0)


def test_build_fat_tree_shape():
    fabric = build_fat_tree(8, hosts_per_rack=4, oversubscription=4.0)
    kinds = {}
    for node in fabric.nodes.values():
        kinds[node.kind] = kinds.get(node.kind, 0) + 1
    assert kinds == {"host": 8, "tor": 2, "spine": 1}
    # Access links are full host rate; uplinks carry the rack's
    # oversubscribed aggregate: 4 hosts / 4.0 over 1 spine = 1 host bw.
    host_bw = DEFAULT_COST_MODEL.rdma_bandwidth
    access = fabric.links[("server0", "tor0")]
    uplink = fabric.links[("tor0", "spine0")]
    assert not access.trunk and uplink.trunk
    assert access.bandwidth == host_bw
    assert uplink.bandwidth == pytest.approx(host_bw)
    # 4:1 with 2 racks of 8: uplink aggregate is 2 hosts' worth.
    wide = build_fat_tree(16, hosts_per_rack=8, oversubscription=4.0)
    agg = sum(l.bandwidth for (src, dst), l in wide.links.items()
              if src == "tor0" and dst.startswith("spine"))
    assert agg == pytest.approx(8 * host_bw / 4.0)


def test_build_fat_tree_validation():
    with pytest.raises(FabricError):
        build_fat_tree(0, hosts_per_rack=2)
    with pytest.raises(FabricError):
        build_fat_tree(4, hosts_per_rack=0)
    with pytest.raises(FabricError):
        build_fat_tree(4, hosts_per_rack=2, oversubscription=0.5)
    with pytest.raises(FabricError):
        build_fat_tree(4, hosts_per_rack=2, num_spines=0)


def test_intra_rack_latency_matches_flat():
    # Two hops of base_latency/2 each: exactly the flat one-way cost.
    fabric = build_fat_tree(8, hosts_per_rack=4)
    base = DEFAULT_COST_MODEL.rdma_base_latency
    assert fabric.path_latency("server0", "server1") == pytest.approx(base)
    # Inter-rack crosses 4 hops: twice the flat latency.
    assert (fabric.path_latency("server0", "server4")
            == pytest.approx(2 * base))


def test_intra_rack_traverse_charges_no_trunk():
    fabric = build_fat_tree(8, hosts_per_rack=4, oversubscription=4.0)
    timing = fabric.traverse("server0", "server1", 0.0, 1e-4, 1 << 20)
    assert timing.queueing == 0.0
    assert all(link.bytes_carried == 0 for link in fabric.trunk_links())


def test_ecmp_routing_deterministic():
    # Same construction => same routes, across independent instances.
    a = build_fat_tree(16, hosts_per_rack=4, num_spines=4)
    b = build_fat_tree(16, hosts_per_rack=4, num_spines=4)
    for src in a.hosts():
        for dst in a.hosts():
            if src == dst:
                continue
            assert ([l.name for l in a.route(src, dst)]
                    == [l.name for l in b.route(src, dst)])
    # A flow sticks to one path even when many equal-cost paths exist.
    paths = a.equal_cost_paths("server0", "server4")
    assert len(paths) == 4  # one per spine
    chosen = a.route("server0", "server4")
    assert chosen in paths
    assert a.route("server0", "server4") is chosen  # cached


def test_ecmp_spreads_flows():
    fabric = build_fat_tree(32, hosts_per_rack=8, num_spines=4)
    spines = set()
    for dst in range(8, 16):
        for link in fabric.route("server0", f"server{dst}"):
            if link.dst.kind == "spine":
                spines.add(link.dst.name)
    # crc32 of distinct pairs should land on more than one spine.
    assert len(spines) > 1


def test_oversubscribed_uplink_queues():
    # Two flows from the same rack race for one skinny uplink: the
    # second booking must wait for the first and record queueing.
    fabric = build_fat_tree(8, hosts_per_rack=4, oversubscription=4.0,
                            num_spines=1)
    size = 8 << 20
    first = fabric.traverse("server0", "server4", 0.0, 1e-6, size)
    second = fabric.traverse("server1", "server5", 0.0, 1e-6, size)
    assert first.queueing == 0.0
    assert second.queueing > 0.0
    uplink = fabric.links[("tor0", "spine0")]
    assert uplink.queue_seconds == pytest.approx(second.queueing)
    assert uplink.bytes_carried == 2 * size
    stats = fabric.link_stats(horizon=1.0)
    assert stats["tor0->spine0"]["transfers"] == 2
    assert 0.0 < stats["tor0->spine0"]["utilization"] <= 1.0


def test_no_path_between_unknown_hosts():
    fabric = build_fat_tree(4, hosts_per_rack=2)
    assert fabric.traverse("server0", "server0", 0.0, 0.0, 100) is None
    assert fabric.traverse("server0", "elsewhere", 0.0, 0.0, 100) is None
    with pytest.raises(FabricError):
        fabric.equal_cost_paths("server0", "elsewhere")


def test_cluster_rejects_fabric_missing_hosts():
    fabric = build_fat_tree(2, hosts_per_rack=2)
    with pytest.raises(ValueError):
        Cluster(4, fabric=fabric)


def _tiny_spec():
    elements = (2 * MB) // 4
    return ModelSpec(name="Tiny-2MB", family="FCN",
                     variables=(VariableSpec("v0", (elements,)),),
                     sample_time=0.001)


def test_hierarchical_uplink_bytes_match_analytic():
    # 4 workers in 2 racks of 2: during phase 2 each rack exchanges
    # 2·M·(R-1)/R bytes with the other racks, so tor->spine payload
    # across both racks is R times that per iteration.  Protocol
    # framing (flag bytes, metadata) adds a little on top.
    spec = _tiny_spec()
    iterations = 2
    bench = run_training_benchmark(
        spec, "RDMA", num_servers=4, batch_size=1, iterations=iterations,
        strategy="hierarchical", topology="fat-tree", hosts_per_rack=2,
        oversubscription=4.0)
    stats = bench.link_stats()
    uplink_bytes = sum(s["bytes_carried"] for name, s in stats.items()
                      if name.startswith("tor"))
    racks = 2
    expected = racks * rack_uplink_bytes(spec.model_bytes, racks) * iterations
    assert uplink_bytes >= expected
    assert uplink_bytes <= expected * 1.15


def test_flat_default_is_fabric_free():
    spec = _tiny_spec()
    bench = run_training_benchmark(spec, "RDMA", num_servers=4,
                                   batch_size=1, iterations=1,
                                   strategy="ring")
    assert bench.fabric is None
    assert bench.link_stats() == {}
