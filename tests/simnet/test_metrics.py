"""Unit and integration tests for the metrics collector."""

import pytest

from repro.simnet import Cluster, Opcode, WorkRequest
from repro.simnet.metrics import MetricsCollector, TransferRecord


class TestCollectorQueries:
    def _collector(self):
        collector = MetricsCollector()
        collector.record_transfer("RDMA_WRITE", "a", "b", 1000, 0.0, 1.0)
        collector.record_transfer("RDMA_WRITE", "a", "c", 500, 0.5, 1.5)
        collector.record_transfer("TCP", "b", "a", 200, 1.0, 3.0)
        return collector

    def test_totals(self):
        collector = self._collector()
        assert collector.total_bytes() == 1700
        assert collector.total_bytes("TCP") == 200
        assert collector.count() == 3
        assert collector.count("RDMA_WRITE") == 2

    def test_bytes_by_host(self):
        collector = self._collector()
        assert collector.bytes_by_host("egress") == {"a": 1500, "b": 200}
        assert collector.bytes_by_host("ingress") == {"b": 1000, "c": 500,
                                                      "a": 200}

    def test_hottest_host(self):
        assert self._collector().hottest_host() == "a"
        assert MetricsCollector().hottest_host() is None

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            self._collector().bytes_by_host("sideways")

    def test_utilization(self):
        collector = self._collector()
        # Host a sent 1500 B over [0, 3]; at 1000 B/s capacity: 50%.
        assert collector.utilization("a", bandwidth=1000) == \
            pytest.approx(0.5)
        assert collector.utilization(
            "a", bandwidth=1000, window=(0.0, 1.0)) > 0.5

    def test_timeline_buckets(self):
        collector = self._collector()
        timeline = collector.timeline(bucket=1.0)
        assert (1.0, 1500) in timeline
        assert (3.0, 200) in timeline
        with pytest.raises(ValueError):
            collector.timeline(bucket=0)

    def test_summary_and_reset(self):
        collector = self._collector()
        text = collector.summary()
        assert "3 transfers" in text and "TCP" in text
        collector.reset()
        assert collector.summary() == "no transfers recorded"

    def test_record_duration(self):
        record = TransferRecord("TCP", "a", "b", 10, 1.0, 2.5)
        assert record.duration == 1.5
        assert record.role == ""

    def test_bytes_in_window(self):
        collector = self._collector()
        # Starts in [0, 1): only the first RDMA_WRITE and the 0.5 one.
        assert collector.bytes_in_window(0.0, 1.0) == 1500
        assert collector.bytes_in_window(0.5) == 700
        assert collector.bytes_in_window(0.0, 1.0, host="a") == 1500
        assert collector.bytes_in_window(0.0, None, host="a",
                                         direction="ingress") == 200
        assert collector.bytes_in_window(kinds=("TCP",)) == 200
        with pytest.raises(ValueError):
            collector.bytes_in_window(direction="sideways")

    def test_timeline_is_sorted(self):
        buckets = [start for start, _ in self._collector().timeline(0.5)]
        assert buckets == sorted(buckets)


class TestRoleAccounting:
    def _collector(self):
        collector = MetricsCollector()
        collector.record_transfer("RDMA_WRITE", "a", "b", 1000, 0.0, 1.0,
                                  role="static-write")
        collector.record_transfer("RDMA_WRITE", "a", "b", 64, 1.0, 1.1,
                                  role="dynamic-metadata")
        collector.record_transfer("RDMA_READ", "b", "a", 900, 1.1, 2.0,
                                  role="dynamic-payload-read")
        collector.record_transfer("RDMA_WRITE", "b", "c", 500, 2.0, 2.5,
                                  role="collective-chunk")
        collector.record_transfer("SEND", "a", "b", 32, 0.0, 0.1)
        return collector

    def test_bytes_by_role(self):
        assert self._collector().bytes_by_role() == {
            "static-write": 1000, "dynamic-metadata": 64,
            "dynamic-payload-read": 900, "collective-chunk": 500, "": 32}

    def test_role_filters(self):
        collector = self._collector()
        assert collector.total_bytes(role="static-write") == 1000
        assert collector.count(role="collective-chunk") == 1
        assert collector.total_bytes("RDMA_WRITE",
                                     role="dynamic-metadata") == 64
        assert collector.count(role="missing") == 0

    def test_summary_lists_roles(self):
        text = self._collector().summary()
        assert "role static-write: 1 transfers, 0.0 MB" in text
        assert "role collective-chunk" in text
        # Unlabelled traffic gets no role line.
        assert "role :" not in text

    def test_collective_run_tags_chunks(self):
        from repro.distributed.runner import run_training_benchmark
        from repro.models import get_model

        bench = run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=2, strategy="ring", collect_metrics=True)
        roles = bench.metrics.bytes_by_role()
        assert roles.get("collective-chunk", 0) > 0
        assert bench.metrics.count(role="collective-chunk") > 0


class TestClusterIntegration:
    def test_rdma_writes_recorded(self):
        cluster = Cluster(2)
        metrics = cluster.enable_metrics()
        a, b = cluster.hosts
        cq = a.nic.create_cq()
        qp_a = a.nic.create_qp(cq)
        qp_b = b.nic.create_qp(b.nic.create_cq())
        qp_a.connect(qp_b)
        src = a.allocate(4096)
        dst = b.allocate(4096)
        src_mr = a.nic.register_memory(src)
        dst_mr = b.nic.register_memory(dst)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=4096, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
        cluster.sim.run()
        assert metrics.count("RDMA_WRITE") == 1
        assert metrics.total_bytes() == 4096
        assert metrics.bytes_by_host()["server0"] == 4096

    def test_disabled_by_default(self):
        cluster = Cluster(2)
        assert cluster.metrics is None

    def test_enable_idempotent(self):
        cluster = Cluster(1)
        assert cluster.enable_metrics() is cluster.enable_metrics()

    def test_training_run_traffic_accounting(self):
        """End to end: the recorded bytes equal the model's 2x volume."""
        from repro.core import RdmaCommRuntime
        from repro.distributed.replication import build_training_graph
        from repro.graph import Session
        from repro.models import get_model

        spec = get_model("GRU")
        job = build_training_graph(spec, num_workers=2, batch_size=8)
        cluster = Cluster(2)
        hosts = {d: cluster.hosts[int(d.lstrip("workerps"))]
                 for d in job.devices}
        session = Session(cluster, job.graph, hosts,
                          comm=RdmaCommRuntime())
        metrics = cluster.enable_metrics()  # after setup: measure steps only
        session.run(iterations=2)
        expected = 2 * 2 * 2 * spec.model_bytes  # iters x workers x dirs
        measured = metrics.total_bytes("RDMA_WRITE")
        assert measured == pytest.approx(expected, rel=0.01)
