"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simnet.simulator import (
    AllOf, AnyOf, Event, Interrupt, Resource, SimulationError, Simulator,
    Store, Timeout)


@pytest.fixture
def sim():
    return Simulator()


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        done = []

        def proc():
            yield sim.timeout(1.5)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done == [1.5]

    def test_timeouts_fire_in_order(self, sim):
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.spawn(proc(3.0, "c"))
        sim.spawn(proc(1.0, "a"))
        sim.spawn(proc(2.0, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_timestamps_fifo(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in range(5):
            sim.spawn(proc(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_zero_delay_timeout_runs_at_same_time(self, sim):
        times = []

        def proc():
            yield sim.timeout(0)
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_run_until_stops_clock_at_until(self, sim):
        def proc():
            yield sim.timeout(10)

        sim.spawn(proc())
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_timeout_carries_value(self, sim):
        got = []

        def proc():
            value = yield sim.timeout(1, value="payload")
            got.append(value)

        sim.spawn(proc())
        sim.run()
        assert got == ["payload"]


class TestEvents:
    def test_event_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_wakes_waiter_with_value(self, sim):
        event = sim.event()
        got = []

        def waiter():
            value = yield event
            got.append((sim.now, value))

        def trigger():
            yield sim.timeout(2)
            event.succeed(42)

        sim.spawn(waiter())
        sim.spawn(trigger())
        sim.run()
        assert got == [(2.0, 42)]

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_throws_into_waiter(self, sim):
        event = sim.event()
        caught = []

        def waiter():
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        sim.spawn(waiter())
        sim.call_after(1, lambda: event.fail(ValueError("boom")))
        sim.run()
        assert caught == ["boom"]

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callback_after_processed_still_fires(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]

    def test_yield_already_triggered_event(self, sim):
        event = sim.event()
        event.succeed("x")
        got = []

        def proc():
            value = yield event
            got.append((sim.now, value))

        sim.spawn(proc())
        sim.run()
        assert got == [(0.0, "x")]


class TestProcesses:
    def test_process_return_value(self, sim):
        def child():
            yield sim.timeout(1)
            return "result"

        def parent(results):
            value = yield sim.spawn(child())
            results.append(value)

        results = []
        sim.spawn(parent(results))
        sim.run()
        assert results == ["result"]

    def test_yield_from_composes(self, sim):
        def inner():
            yield sim.timeout(1)
            return 10

        def outer(out):
            value = yield from inner()
            yield sim.timeout(1)
            out.append((sim.now, value))

        out = []
        sim.spawn(outer(out))
        sim.run()
        assert out == [(2.0, 10)]

    def test_yield_non_event_fails_process(self, sim):
        def bad():
            yield "not an event"

        proc = sim.spawn(bad())
        sim.run()
        assert proc.triggered
        with pytest.raises(SimulationError):
            _ = proc.value

    def test_yield_bare_delay_is_a_timeout(self, sim):
        """``yield 1.5`` is the allocation-free form of ``yield sim.timeout(1.5)``."""
        out = []

        def proc():
            yield 1.5
            out.append(sim.now)
            yield 2       # ints work too
            out.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert out == [1.5, 3.5]

    def test_yield_negative_delay_fails_process(self, sim):
        def bad():
            yield -1.0

        proc = sim.spawn(bad())
        sim.run()
        assert proc.triggered
        with pytest.raises(SimulationError):
            _ = proc.value

    def test_bare_delay_interleaves_like_timeout(self, sim):
        """Bare delays land at the same (time, seq) slot a Timeout would."""
        order = []

        def a():
            yield 1.0
            order.append("a")

        def b():
            yield sim.timeout(1.0)
            order.append("b")

        sim.spawn(a())
        sim.spawn(b())
        sim.run()
        # a was spawned (and thus resumed and re-scheduled) first.
        assert order == ["a", "b"]

    def test_same_timestamp_fifo_across_scheduling_paths(self, sim):
        """The seq tie-break totally orders same-time work by the
        moment it was *scheduled*, regardless of entry point.  The
        call_at/call_after callbacks book their t=1.0 slot at spawn
        time; the processes book theirs only when their t=0 resume
        yields — so the callbacks run first, then the process wakes
        in spawn order, with bare delays and Timeout objects
        indistinguishable."""
        order = []

        def bare(tag):
            yield 1.0
            order.append(tag)

        def timed(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        sim.spawn(bare("bare0"))
        sim.spawn(timed("timeout0"))
        sim.call_at(1.0, lambda: order.append("call_at0"))
        sim.spawn(bare("bare1"))
        sim.call_after(1.0, lambda: order.append("call_after0"))
        sim.spawn(timed("timeout1"))
        sim.run()
        assert order == ["call_at0", "call_after0",
                         "bare0", "timeout0", "bare1", "timeout1"]

    def test_exception_in_process_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1)
            raise RuntimeError("child died")

        caught = []

        def parent():
            try:
                yield sim.spawn(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.spawn(parent())
        sim.run()
        assert caught == ["child died"]

    def test_interrupt_reaches_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as inter:
                log.append((sim.now, inter.cause))

        proc = sim.spawn(sleeper())
        sim.call_after(1, lambda: proc.interrupt("wake"))
        sim.run()
        assert log == [(1.0, "wake")]

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(5)

        p = sim.spawn(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_run_until_complete_returns_value(self, sim):
        def proc():
            yield sim.timeout(3)
            return 99

        p = sim.spawn(proc())
        assert sim.run_until_complete(p) == 99
        assert sim.now == 3.0

    def test_run_until_complete_detects_deadlock(self, sim):
        event = sim.event()  # nobody will trigger this

        def proc():
            yield event

        p = sim.spawn(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(p)

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)


class TestCombinators:
    def test_all_of_waits_for_all(self, sim):
        def child(delay):
            yield sim.timeout(delay)
            return delay

        got = []

        def parent():
            values = yield sim.all_of([sim.spawn(child(d)) for d in (3, 1, 2)])
            got.append((sim.now, values))

        sim.spawn(parent())
        sim.run()
        assert got == [(3.0, [3, 1, 2])]

    def test_all_of_empty_fires_immediately(self, sim):
        got = []

        def parent():
            values = yield sim.all_of([])
            got.append((sim.now, values))

        sim.spawn(parent())
        sim.run()
        assert got == [(0.0, [])]

    def test_any_of_fires_on_first(self, sim):
        got = []

        def parent():
            value = yield sim.any_of([sim.timeout(5, value="slow"),
                                      sim.timeout(1, value="fast")])
            got.append((sim.now, value))

        sim.spawn(parent())
        sim.run()
        assert got == [(1.0, "fast")]

    def test_any_of_requires_events(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestResource:
    def test_serializes_access(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(tag):
            req = res.request()
            yield req
            log.append(("start", tag, sim.now))
            yield sim.timeout(2)
            res.release(req)
            log.append(("end", tag, sim.now))

        sim.spawn(user("a"))
        sim.spawn(user("b"))
        sim.run()
        assert log == [("start", "a", 0.0), ("end", "a", 2.0),
                       ("start", "b", 2.0), ("end", "b", 4.0)]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        starts = []

        def user():
            req = res.request()
            yield req
            starts.append(sim.now)
            yield sim.timeout(1)
            res.release(req)

        for _ in range(3):
            sim.spawn(user())
        sim.run()
        assert starts == [0.0, 0.0, 1.0]

    def test_release_without_grant_raises(self, sim):
        res = Resource(sim)
        granted = res.request()
        res.release(granted)
        with pytest.raises(SimulationError):
            res.release(granted)

    def test_bad_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_queue_length(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        res.request()
        assert res.queue_length == 1
        assert res.in_use == 1
        res.release(first)
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        got = []

        def proc():
            item = yield store.get()
            got.append(item)

        sim.spawn(proc())
        sim.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(4)
            store.put("late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [(4.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def proc():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.spawn(proc())
        sim.run()
        assert got == [0, 1, 2]

    def test_len(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestCallbacks:
    def test_call_at_and_after(self, sim):
        times = []
        sim.call_at(2.0, lambda: times.append(sim.now))
        sim.call_after(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0]

    def test_call_in_past_rejected(self, sim):
        def proc():
            yield sim.timeout(5)
            with pytest.raises(SimulationError):
                sim.call_at(1.0, lambda: None)

        sim.spawn(proc())
        sim.run()

    def test_event_count_increases(self, sim):
        sim.call_after(1, lambda: None)
        sim.run()
        assert sim.event_count >= 1
