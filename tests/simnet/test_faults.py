"""Unit tests for the fault-injection plane (spec, rules, verdicts).

These cover the injector in isolation with a stub NIC; the recovery
behaviour it provokes is covered end-to-end by ``tests/chaos`` and the
in-flight cases in ``tests/core/test_failure_injection.py``.
"""

import types

import pytest

from repro.simnet import Opcode, WcStatus, WorkRequest
from repro.simnet.faults import (FAULT_KINDS, FaultInjector, FaultRule,
                                 FaultSpecError, FaultVerdict,
                                 parse_fault_spec)


def _nic(now=0.0, host="server0"):
    """Just enough NIC surface for FaultInjector.on_post."""
    return types.SimpleNamespace(
        sim=types.SimpleNamespace(now=now),
        host=types.SimpleNamespace(
            name=host, cluster=types.SimpleNamespace(tracer=None)))


def _wr(role="static-write", size=4096):
    return WorkRequest(opcode=Opcode.WRITE, size=size, role=role)


class TestParseFaultSpec:
    def test_single_clause_all_keys(self):
        [rule] = parse_fault_spec(
            "partial:p=0.25,count=3,skip=2,at=0.001,until=0.005,"
            "host=server1,role=static-write,delay=1e-4,frac=0.8")
        assert rule.kind == "partial"
        assert rule.probability == 0.25
        assert rule.count == 3
        assert rule.skip == 2
        assert rule.after == 0.001
        assert rule.until == 0.005
        assert rule.host == "server1"
        assert rule.role == "static-write"
        assert rule.delay == 1e-4
        assert rule.frac == 0.8

    def test_multiple_clauses_keep_spec_order(self):
        rules = parse_fault_spec("drop:p=0.1;blackhole:count=1;straggler:")
        assert [r.kind for r in rules] == ["drop", "blackhole", "straggler"]

    def test_hyphenated_kind_normalised(self):
        [rule] = parse_fault_spec("qp-break:count=1")
        assert rule.kind == "qp_break"

    def test_for_sets_until_relative_to_after(self):
        [rule] = parse_fault_spec("flap:at=0.002,for=0.0005")
        assert rule.after == 0.002
        assert rule.until == pytest.approx(0.0025)

    def test_probability_aliases(self):
        for alias in ("p", "prob", "probability"):
            [rule] = parse_fault_spec(f"drop:{alias}=0.5")
            assert rule.probability == 0.5

    def test_empty_clauses_skipped(self):
        assert parse_fault_spec("") == []
        assert parse_fault_spec(";;") == []
        assert len(parse_fault_spec("drop:;;")) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            parse_fault_spec("gremlin:p=1.0")

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault-spec key"):
            parse_fault_spec("drop:bogus=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(FaultSpecError, match="key=value"):
            parse_fault_spec("drop:count")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultSpecError, match="not in"):
            parse_fault_spec("drop:p=1.5")

    def test_full_frac_rejected(self):
        # frac=1.0 would commit the whole payload, flag included — a
        # "partial" fault must never be a silent success.
        with pytest.raises(FaultSpecError, match="frac"):
            parse_fault_spec("partial:frac=1.0")


class TestFaultRule:
    def test_time_window_is_half_open(self):
        rule = FaultRule(kind="drop", after=1.0, until=2.0)
        assert not rule.matches(0.5, "h", "r")
        assert rule.matches(1.0, "h", "r")
        assert not rule.matches(2.0, "h", "r")

    def test_host_and_role_filters(self):
        rule = FaultRule(kind="drop", host="server1", role="static-write")
        assert rule.matches(0.0, "server1", "static-write")
        assert not rule.matches(0.0, "server0", "static-write")
        assert not rule.matches(0.0, "server1", "dynamic-metadata")

    def test_exhausted_after_count_firings(self):
        rule = FaultRule(kind="drop", count=2)
        assert not rule.exhausted()
        rule.fired = 2
        assert rule.exhausted()


class TestFaultVerdict:
    def test_vanishing_kinds_commit_nothing(self):
        for kind in ("drop", "blackhole", "flap"):
            assert FaultVerdict(kind=kind).commit_size(4096) == 0

    def test_partial_commits_a_strict_prefix(self):
        verdict = FaultVerdict(kind="partial", frac=0.5)
        assert verdict.commit_size(100) == 50
        # Even frac → 1.0-ish inputs may never land the final byte,
        # because the protocols put their flag there.
        assert FaultVerdict(kind="partial", frac=0.999).commit_size(8) == 7
        assert verdict.commit_size(0) == 0

    def test_only_flap_fails_fast(self):
        assert FaultVerdict(kind="flap").fail_fast
        assert not FaultVerdict(kind="drop").fail_fast

    def test_only_qp_break_breaks_the_pair(self):
        assert FaultVerdict(kind="qp_break").break_qp
        assert not FaultVerdict(kind="partial").break_qp


class TestFaultInjector:
    def test_unarmed_when_empty(self):
        assert not FaultInjector([]).armed
        assert not FaultInjector.from_spec("").armed
        assert FaultInjector.from_spec("drop:count=1").armed

    def test_control_verbs_never_faulted(self):
        injector = FaultInjector.from_spec("drop:p=1.0")
        assert injector.on_post(_nic(), None, _wr(role="control")) is None
        assert injector.injected == []

    def test_count_caps_firings(self):
        injector = FaultInjector.from_spec("drop:count=2")
        verdicts = [injector.on_post(_nic(), None, _wr()) for _ in range(5)]
        assert [v.kind if v else None for v in verdicts] == \
            ["drop", "drop", None, None, None]
        assert len(injector.injected) == 2

    def test_skip_burns_before_firing(self):
        injector = FaultInjector.from_spec("drop:count=1,skip=2")
        verdicts = [injector.on_post(_nic(), None, _wr()) for _ in range(4)]
        assert [v.kind if v else None for v in verdicts] == \
            [None, None, "drop", None]

    def test_straggler_delays_accumulate(self):
        injector = FaultInjector.from_spec(
            "straggler:delay=1e-4;straggler:delay=2e-4")
        verdict = injector.on_post(_nic(), None, _wr())
        assert verdict.kind == "straggler"
        assert verdict.delay == pytest.approx(3e-4)
        assert verdict.status is WcStatus.SUCCESS

    def test_first_terminal_rule_wins(self):
        injector = FaultInjector.from_spec("drop:count=1;blackhole:count=1")
        assert injector.on_post(_nic(), None, _wr()).kind == "drop"
        # drop is now exhausted; the next post reaches blackhole.
        assert injector.on_post(_nic(), None, _wr()).kind == "blackhole"

    def test_straggler_delay_rides_on_terminal_verdict(self):
        injector = FaultInjector.from_spec(
            "straggler:delay=5e-4;drop:count=1")
        verdict = injector.on_post(_nic(), None, _wr())
        assert verdict.kind == "drop"
        assert verdict.delay == pytest.approx(5e-4)

    def test_error_statuses_by_kind(self):
        for kind, status in [("drop", WcStatus.RETRY_EXC_ERR),
                             ("partial", WcStatus.RETRY_EXC_ERR),
                             ("flap", WcStatus.RETRY_EXC_ERR),
                             ("qp_break", WcStatus.WR_FLUSH_ERR)]:
            injector = FaultInjector.from_spec(f"{kind}:count=1")
            assert injector.on_post(_nic(), None, _wr()).status is status

    def test_probabilistic_draws_are_seed_deterministic(self):
        def schedule(seed):
            injector = FaultInjector.from_spec("drop:p=0.3", seed=seed)
            return [injector.on_post(_nic(), None, _wr()) is not None
                    for _ in range(64)]

        assert schedule(7) == schedule(7)
        assert any(schedule(7))           # p=0.3 over 64 draws fires
        assert not all(schedule(7))       # ... but not always
        seeds = {tuple(schedule(s)) for s in range(8)}
        assert len(seeds) > 1             # the seed matters

    def test_certain_rules_make_no_draws(self):
        # p=1.0 must not consume RNG state: adding a deterministic rule
        # to a spec cannot perturb another rule's schedule.
        paired = FaultInjector.from_spec("drop:p=1.0,count=1;blackhole:p=0.5",
                                         seed=3)
        alone = FaultInjector.from_spec("blackhole:p=0.5", seed=3)
        paired.on_post(_nic(), None, _wr())  # consumes the count=1 drop
        fires_paired = [paired.on_post(_nic(), None, _wr()) is not None
                        for _ in range(32)]
        fires_alone = [alone.on_post(_nic(), None, _wr()) is not None
                       for _ in range(32)]
        assert fires_paired == fires_alone

    def test_log_and_snapshot_shape(self):
        injector = FaultInjector.from_spec("drop:count=1;partial:count=1",
                                           seed=9)
        injector.on_post(_nic(now=1.5, host="server1"), None,
                         _wr(size=128))
        injector.on_post(_nic(now=2.5, host="server2"), None,
                         _wr(role="dynamic-metadata", size=64))
        assert injector.counts_by_kind() == {"drop": 1, "partial": 1}
        snap = injector.snapshot()
        assert snap["seed"] == 9
        assert snap["total"] == 2
        assert snap["by_kind"] == {"drop": 1, "partial": 1}
        assert snap["log"][0] == {
            "time": 1.5, "kind": "drop", "host": "server1",
            "role": "static-write", "opcode": "RDMA_WRITE", "size": 128,
        }

    def test_every_documented_kind_parses(self):
        for kind in FAULT_KINDS:
            [rule] = parse_fault_spec(f"{kind}:count=1")
            assert rule.kind == kind
