"""Property-based tests (hypothesis) for the simulation substrate."""

from hypothesis import given, settings, strategies as st

from repro.simnet import Cluster, Opcode, WorkRequest
from repro.simnet.memory import AddressSpace, DenseBacking, VirtualBacking
from repro.simnet.nic import Pipe
from repro.simnet.simulator import Simulator


class TestSimulatorProperties:
    @given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                     allow_nan=False), min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(d):
            yield sim.timeout(d)
            fired.append(sim.now)

        for d in delays:
            sim.spawn(proc(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.floats(min_value=0, max_value=100,
                                     allow_nan=False), min_size=1, max_size=20))
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def proc(d):
            yield sim.timeout(d)
            observed.append(sim.now)
            yield sim.timeout(d)
            observed.append(sim.now)

        for d in delays:
            sim.spawn(proc(d))
        last = -1.0
        while sim._queue:
            sim.step()
            assert sim.now >= last
            last = sim.now


class TestPipeProperties:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 30),
                          min_size=1, max_size=30))
    def test_reservations_never_overlap(self, sizes):
        pipe = Pipe(bandwidth=1e9)
        windows = []
        for size in sizes:
            start, end = pipe.reserve(0.0, size)
            windows.append((start, end))
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1  # FIFO, no overlap

    @given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 24),
                          min_size=1, max_size=30))
    def test_total_time_is_sum_of_serializations(self, sizes):
        import pytest
        pipe = Pipe(bandwidth=1e9)
        for size in sizes:
            pipe.reserve(0.0, size)
        assert pipe.available_at * 1e9 == pytest.approx(sum(sizes))
        assert pipe.bytes_carried == sum(sizes)


class TestMemoryProperties:
    @given(st.data())
    def test_dense_backing_read_your_writes(self, data):
        size = data.draw(st.integers(min_value=16, max_value=512))
        backing = DenseBacking(size)
        model = bytearray(size)
        for _ in range(data.draw(st.integers(min_value=1, max_value=10))):
            off = data.draw(st.integers(min_value=0, max_value=size - 1))
            content = data.draw(st.binary(min_size=1, max_size=size - off))
            backing.write(off, content)
            model[off:off + len(content)] = content
        assert backing.read(0, size) == bytes(model)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_virtual_backing_preserves_edges(self, data):
        size = data.draw(st.integers(min_value=256 * 1024, max_value=1 << 22))
        backing = VirtualBacking(size)
        seed = data.draw(st.binary(min_size=64, max_size=256))
        # Build a payload larger than the sparse limit from a small seed.
        content = (seed * (130 * 1024 // len(seed) + 1))[:130 * 1024]
        off = data.draw(st.integers(min_value=0,
                                    max_value=size - len(content)))
        backing.write(off, content)
        assert backing.read(off, 64) == content[:64]
        assert backing.read(off + len(content) - 64, 64) == content[-64:]

    @given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 20),
                          min_size=1, max_size=40))
    def test_allocations_disjoint(self, sizes):
        space = AddressSpace("prop")
        buffers = [space.allocate(s) for s in sizes]
        spans = sorted((b.addr, b.end) for b in buffers)
        for (a1, e1), (a2, e2) in zip(spans, spans[1:]):
            assert e1 <= a2


class TestWriteCommitProperties:
    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(min_value=1, max_value=1 << 20),
           pattern=st.binary(min_size=1, max_size=64))
    def test_write_delivers_exact_bytes(self, size, pattern):
        cluster = Cluster(2)
        a, b = cluster.hosts
        cq = a.nic.create_cq()
        qp_a = a.nic.create_qp(cq)
        qp_b = b.nic.create_qp(b.nic.create_cq())
        qp_a.connect(qp_b)
        src = a.allocate(size, dense=True)
        dst = b.allocate(size, dense=True)
        src_mr = a.nic.register_memory(src)
        dst_mr = b.nic.register_memory(dst)
        payload = (pattern * (size // len(pattern) + 1))[:size]
        src.write(payload)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=size, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
        cluster.sim.run()
        comps = cq.poll()
        assert comps[0].ok
        assert dst.read(0, size) == payload

    @settings(max_examples=15, deadline=None)
    @given(n_writes=st.integers(min_value=1, max_value=8),
           size=st.integers(min_value=1 << 12, max_value=1 << 18))
    def test_completion_order_matches_post_order(self, n_writes, size):
        cluster = Cluster(2)
        a, b = cluster.hosts
        cq = a.nic.create_cq()
        qp_a = a.nic.create_qp(cq)
        qp_b = b.nic.create_qp(b.nic.create_cq())
        qp_a.connect(qp_b)
        wr_ids = []
        for _ in range(n_writes):
            src = a.allocate(size, dense=True)
            dst = b.allocate(size, dense=True)
            src_mr = a.nic.register_memory(src)
            dst_mr = b.nic.register_memory(dst)
            wr = WorkRequest(
                opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey)
            wr_ids.append(wr.wr_id)
            qp_a.post_send(wr)
        cluster.sim.run()
        comps = cq.poll(max_entries=64)
        assert [c.wr_id for c in comps] == wr_ids
