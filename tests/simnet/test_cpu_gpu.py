"""Unit tests for the CPU copy engine and the simulated GPU."""

import pytest

from repro.simnet import Cluster
from repro.simnet.cpu import CpuEngine
from repro.simnet.gpu import GpuDevice
from repro.simnet.simulator import Simulator


class TestCpuEngine:
    def test_single_task_full_duration(self):
        sim = Simulator()
        engine = CpuEngine(sim, lanes=4)
        assert engine.reserve(1.0) == 1.0

    def test_parallel_up_to_lane_count(self):
        sim = Simulator()
        engine = CpuEngine(sim, lanes=2)
        assert engine.reserve(1.0) == 1.0
        assert engine.reserve(1.0) == 1.0   # second lane
        assert engine.reserve(1.0) == 2.0   # queues behind the first

    def test_least_loaded_lane_chosen(self):
        sim = Simulator()
        engine = CpuEngine(sim, lanes=2)
        engine.reserve(3.0)
        engine.reserve(1.0)
        # Next work lands on the lane free at t=1.
        assert engine.reserve(1.0) == 2.0

    def test_run_process_charges_wall_time(self):
        sim = Simulator()
        engine = CpuEngine(sim, lanes=1)
        done = []

        def worker(tag):
            yield from engine.run(0.5)
            done.append((tag, sim.now))

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run()
        assert done == [("a", 0.5), ("b", 1.0)]

    def test_zero_duration_free(self):
        sim = Simulator()
        engine = CpuEngine(sim, lanes=1)
        assert engine.reserve(0.0) == sim.now
        assert engine.busy_seconds == 0.0

    def test_busy_accounting(self):
        sim = Simulator()
        engine = CpuEngine(sim, lanes=3)
        engine.reserve(1.0)
        engine.reserve(2.0)
        assert engine.busy_seconds == 3.0

    def test_bad_lane_count(self):
        with pytest.raises(ValueError):
            CpuEngine(Simulator(), lanes=0)


class TestGpuDevice:
    @pytest.fixture
    def host(self):
        return Cluster(1).hosts[0]

    def test_allocation_tagged_as_device_memory(self, host):
        gpu = GpuDevice(host, index=0)
        buf = gpu.allocate(1024)
        assert gpu.owns(buf)
        assert not gpu.owns(host.allocate(1024))

    def test_staging_copy_cost(self, host):
        gpu = GpuDevice(host)
        small = gpu.staging_copy_time(4 * 1024)
        large = gpu.staging_copy_time(64 * 1024 * 1024)
        assert 0 < small < large

    def test_free(self, host):
        gpu = GpuDevice(host)
        buf = gpu.allocate(256)
        gpu.free(buf)
        assert not gpu.owns(buf)

    def test_name(self, host):
        assert GpuDevice(host, index=1).name.endswith("/gpu1")

    def test_gpudirect_capability_flag(self, host):
        assert GpuDevice(host).gpudirect_capable
        assert not GpuDevice(host, gpudirect_capable=False).gpudirect_capable
