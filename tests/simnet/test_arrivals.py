"""Unit tests for the seeded open-loop arrival processes."""

import random

import pytest

from repro.simnet.arrivals import (ARRIVAL_KINDS, arrival_times, bursty_gaps,
                                   make_gaps, poisson_gaps, uniform_gaps)


class TestPoisson:
    def test_mean_gap_matches_rate(self):
        times = arrival_times("poisson", seed=0, rate=1000.0, count=5000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1e-3, rel=0.1)

    def test_seeded_reproducibility(self):
        assert arrival_times("poisson", seed=42, rate=500.0, count=100) == \
            arrival_times("poisson", seed=42, rate=500.0, count=100)
        assert arrival_times("poisson", seed=42, rate=500.0, count=100) != \
            arrival_times("poisson", seed=43, rate=500.0, count=100)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            next(poisson_gaps(random.Random(0), 0.0))


class TestUniform:
    def test_fixed_gaps(self):
        times = arrival_times("uniform", seed=0, rate=100.0, count=5)
        assert times == pytest.approx([0.01, 0.02, 0.03, 0.04, 0.05])

    def test_seed_irrelevant(self):
        assert arrival_times("uniform", seed=1, rate=100.0, count=10) == \
            arrival_times("uniform", seed=99, rate=100.0, count=10)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            next(uniform_gaps(random.Random(0), -1.0))


class TestBursty:
    def test_long_run_rate_preserved(self):
        # Non-degenerate parameters (burst_factor * on_fraction < 1):
        # the OFF rate is solved so the long-run mean matches `rate`.
        # The default shape clamps the OFF rate instead (the burst
        # carries the whole budget), which the docstring documents.
        times = arrival_times("bursty", seed=3, rate=1000.0, count=20000,
                              burst_factor=2.0, on_fraction=0.25)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1e-3, rel=0.25)

    def test_burstier_than_poisson(self):
        # Squared coefficient of variation of the gaps: 1 for Poisson,
        # strictly larger for the modulated process.
        def cv2(kind):
            times = arrival_times(kind, seed=5, rate=1000.0, count=20000)
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean ** 2
        assert cv2("bursty") > cv2("poisson") * 1.2

    def test_parameter_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            next(bursty_gaps(rng, 100.0, burst_factor=0.5))
        with pytest.raises(ValueError):
            next(bursty_gaps(rng, 100.0, on_fraction=1.5))
        with pytest.raises(ValueError):
            next(bursty_gaps(rng, 0.0))


class TestFactory:
    def test_all_kinds_constructible(self):
        for kind in ARRIVAL_KINDS:
            gaps = make_gaps(kind, random.Random(0), 100.0)
            assert next(gaps) > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_gaps("pareto", random.Random(0), 100.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            arrival_times("poisson", seed=0, rate=1.0, count=-1)

    def test_times_strictly_increasing(self):
        times = arrival_times("bursty", seed=9, rate=2000.0, count=500)
        assert all(b > a for a, b in zip(times, times[1:]))
