"""Unit tests for the simulated RDMA NIC: verbs, CQs, timing, semantics."""

import pytest

from repro.simnet import (
    Cluster, MemoryError_, Opcode, WcStatus, WorkRequest)
from repro.simnet.nic import MAX_COMMIT_CHUNKS


@pytest.fixture
def pair():
    """Two hosts with one connected QP pair and per-host CQs."""
    cluster = Cluster(2)
    a, b = cluster.hosts
    cq_a = a.nic.create_cq()
    cq_b = b.nic.create_cq()
    qp_a = a.nic.create_qp(cq_a)
    qp_b = b.nic.create_qp(cq_b)
    qp_a.connect(qp_b)
    return cluster, a, b, qp_a, qp_b, cq_a, cq_b


def register(host, size, dense=None):
    buf = host.allocate(size, dense=dense)
    region = host.nic.register_memory(buf)
    return buf, region


def drain(cluster, cq):
    cluster.sim.run()
    return cq.poll()


class TestWrite:
    def test_write_moves_bytes(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        src, src_mr = register(a, 1024)
        dst, dst_mr = register(b, 1024)
        src.write(b"tensor-bytes")
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=12, local_addr=src.addr, lkey=src_mr.lkey,
            remote_addr=dst.addr, rkey=dst_mr.rkey))
        comps = drain(cluster, cq_a)
        assert len(comps) == 1 and comps[0].ok
        assert dst.read(0, 12) == b"tensor-bytes"

    def test_write_timing_matches_cost_model(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        size = 1024 * 1024
        src, src_mr = register(a, size, dense=True)
        dst, dst_mr = register(b, size, dense=True)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=size, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
        comps = drain(cluster, cq_a)
        expected = cluster.cost.rdma_write_time(size)
        assert comps[0].timestamp == pytest.approx(expected, rel=0.01)

    def test_inline_write(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        dst, dst_mr = register(b, 64)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, inline_data=b"\x01",
            remote_addr=dst.addr + 63, rkey=dst_mr.rkey))
        comps = drain(cluster, cq_a)
        assert comps[0].ok
        assert dst.read_byte(63) == 1

    def test_bad_rkey_completes_with_error(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        src, src_mr = register(a, 64)
        register(b, 64)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=64, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=0xdead, rkey=99999))
        comps = drain(cluster, cq_a)
        assert comps[0].status is WcStatus.REMOTE_ACCESS_ERROR

    def test_write_outside_registered_region_fails(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        src, src_mr = register(a, 64)
        dst, dst_mr = register(b, 64)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=64, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr + 32, rkey=dst_mr.rkey))
        comps = drain(cluster, cq_a)
        assert comps[0].status is WcStatus.REMOTE_ACCESS_ERROR

    def test_unsignaled_write_produces_no_completion(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        src, src_mr = register(a, 64)
        dst, dst_mr = register(b, 64)
        src.write(b"q" * 64)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=64, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey,
            signaled=False))
        comps = drain(cluster, cq_a)
        assert comps == []
        assert dst.read(0, 64) == b"q" * 64

    def test_ascending_order_commit(self, pair):
        """A reader polling mid-transfer must never see the tail before
        the head: the flag-byte protocol depends on this."""
        cluster, a, b, qp_a, _, cq_a, _ = pair
        size = 1024 * 1024
        src, src_mr = register(a, size, dense=True)
        dst, dst_mr = register(b, size, dense=True)
        src.write(b"\xff" * size)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=size, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
        violations = []

        def poller():
            while dst.read_byte(size - 1) != 0xff:
                head_done = dst.read_byte(0) == 0xff
                tail_done = dst.read_byte(size - 1) == 0xff
                if tail_done and not head_done:
                    violations.append(cluster.sim.now)
                yield cluster.sim.timeout(1e-6)

        proc = cluster.sim.spawn(poller())
        cluster.sim.run_until_complete(proc, limit=1.0)
        assert violations == []

    def test_partial_commit_observable_midway(self, pair):
        """Mid-transfer, some chunks are visible but the tail is not."""
        cluster, a, b, qp_a, _, _, _ = pair
        size = 1024 * 1024
        src, src_mr = register(a, size, dense=True)
        dst, dst_mr = register(b, size, dense=True)
        src.write(b"\xee" * size)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=size, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
        observations = []

        def poller():
            while dst.read_byte(size - 1) != 0xee:
                observations.append(dst.read_byte(0))
                yield cluster.sim.timeout(2e-6)

        proc = cluster.sim.spawn(poller())
        cluster.sim.run_until_complete(proc, limit=1.0)
        # The head chunk must become visible strictly before the tail.
        assert 0xee in observations

    def test_virtual_write_preserves_tail_flag(self, pair):
        """Timing-only transfers still deliver real head/tail windows."""
        cluster, a, b, qp_a, _, cq_a, _ = pair
        size = 32 * 1024 * 1024  # virtual backing on both sides
        src, src_mr = register(a, size)
        dst, dst_mr = register(b, size)
        src.write(b"\x01", offset=size - 1)  # sender's flag byte
        qp_a.post_send(WorkRequest(
            opcode=Opcode.WRITE, size=size, local_addr=src.addr,
            lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
        comps = drain(cluster, cq_a)
        assert comps[0].ok
        assert dst.read_byte(size - 1) == 1

    def test_fifo_ordering_two_writes(self, pair):
        """Writes posted on one QP commit in posting order."""
        cluster, a, b, qp_a, _, cq_a, _ = pair
        src1, mr1 = register(a, 64)
        src2, mr2 = register(a, 64)
        dst, dst_mr = register(b, 64)
        src1.write(b"A" * 64)
        src2.write(b"B" * 64)
        qp_a.post_send(WorkRequest(opcode=Opcode.WRITE, size=64,
                                   local_addr=src1.addr, lkey=mr1.lkey,
                                   remote_addr=dst.addr, rkey=dst_mr.rkey))
        qp_a.post_send(WorkRequest(opcode=Opcode.WRITE, size=64,
                                   local_addr=src2.addr, lkey=mr2.lkey,
                                   remote_addr=dst.addr, rkey=dst_mr.rkey))
        comps = drain(cluster, cq_a)
        assert [c.ok for c in comps] == [True, True]
        assert comps[0].timestamp <= comps[1].timestamp
        assert dst.read(0, 64) == b"B" * 64


class TestRead:
    def test_read_pulls_remote_bytes(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        local, local_mr = register(a, 128)
        remote, remote_mr = register(b, 128)
        remote.write(b"remote-data!")
        qp_a.post_send(WorkRequest(
            opcode=Opcode.READ, size=12, local_addr=local.addr,
            lkey=local_mr.lkey, remote_addr=remote.addr, rkey=remote_mr.rkey))
        comps = drain(cluster, cq_a)
        assert comps[0].ok and comps[0].opcode is Opcode.READ
        assert local.read(0, 12) == b"remote-data!"

    def test_read_slower_than_write(self, pair):
        """One-sided READ pays an extra request leg vs WRITE."""
        cluster, *_ = pair
        cost = cluster.cost
        assert cost.rdma_read_time(4096) > cost.rdma_write_time(4096)

    def test_read_invalid_remote_region(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        local, local_mr = register(a, 128)
        qp_a.post_send(WorkRequest(
            opcode=Opcode.READ, size=12, local_addr=local.addr,
            lkey=local_mr.lkey, remote_addr=1234, rkey=4321))
        comps = drain(cluster, cq_a)
        assert comps[0].status is WcStatus.REMOTE_ACCESS_ERROR


class TestSendRecv:
    def test_send_matches_posted_recv(self, pair):
        cluster, a, b, qp_a, qp_b, cq_a, cq_b = pair
        src, src_mr = register(a, 64)
        dst, dst_mr = register(b, 64)
        src.write(b"msg")
        qp_b.post_recv(WorkRequest(opcode=Opcode.RECV, size=64,
                                   local_addr=dst.addr, lkey=dst_mr.lkey))
        qp_a.post_send(WorkRequest(opcode=Opcode.SEND, size=3,
                                   local_addr=src.addr, lkey=src_mr.lkey))
        cluster.sim.run()
        send_comps = cq_a.poll()
        recv_comps = cq_b.poll()
        assert send_comps[0].ok and recv_comps[0].ok
        assert recv_comps[0].opcode is Opcode.RECV
        assert dst.read(0, 3) == b"msg"

    def test_send_before_recv_waits(self, pair):
        """RNR: data waits for a receive buffer instead of being lost."""
        cluster, a, b, qp_a, qp_b, cq_a, cq_b = pair
        src, src_mr = register(a, 64)
        dst, dst_mr = register(b, 64)
        src.write(b"early")
        qp_a.post_send(WorkRequest(opcode=Opcode.SEND, size=5,
                                   local_addr=src.addr, lkey=src_mr.lkey))
        cluster.sim.run()
        assert cq_b.poll() == []  # nothing delivered yet
        qp_b.post_recv(WorkRequest(opcode=Opcode.RECV, size=64,
                                   local_addr=dst.addr, lkey=dst_mr.lkey))
        cluster.sim.run()
        assert cq_b.poll()[0].ok
        assert dst.read(0, 5) == b"early"

    def test_recv_buffer_too_small_errors(self, pair):
        cluster, a, b, qp_a, qp_b, _, cq_b = pair
        src, src_mr = register(a, 64)
        dst, dst_mr = register(b, 64)
        src.write(b"x" * 40)
        qp_b.post_recv(WorkRequest(opcode=Opcode.RECV, size=8,
                                   local_addr=dst.addr, lkey=dst_mr.lkey))
        qp_a.post_send(WorkRequest(opcode=Opcode.SEND, size=40,
                                   local_addr=src.addr, lkey=src_mr.lkey))
        cluster.sim.run()
        comps = cq_b.poll()
        assert comps[0].status is WcStatus.LOCAL_LENGTH_ERROR

    def test_inline_send(self, pair):
        cluster, a, b, qp_a, qp_b, _, cq_b = pair
        dst, dst_mr = register(b, 64)
        qp_b.post_recv(WorkRequest(opcode=Opcode.RECV, size=64,
                                   local_addr=dst.addr, lkey=dst_mr.lkey))
        qp_a.post_send(WorkRequest(opcode=Opcode.SEND, inline_data=b"inline!"))
        cluster.sim.run()
        assert cq_b.poll()[0].ok
        assert dst.read(0, 7) == b"inline!"


class TestQpCq:
    def test_unconnected_qp_raises(self):
        cluster = Cluster(1)
        host = cluster.hosts[0]
        cq = host.nic.create_cq()
        qp = host.nic.create_qp(cq)
        buf, mr = register(host, 64)
        with pytest.raises(MemoryError_, match="not connected"):
            qp.post_send(WorkRequest(opcode=Opcode.WRITE, size=4,
                                     local_addr=buf.addr, lkey=mr.lkey,
                                     remote_addr=buf.addr, rkey=mr.rkey))

    def test_double_connect_rejected(self, pair):
        _, a, b, qp_a, qp_b, _, _ = pair
        other = a.nic.create_qp(a.nic.create_cq())
        with pytest.raises(MemoryError_):
            other.connect(qp_b)

    def test_cq_wait_event(self, pair):
        cluster, a, b, qp_a, _, cq_a, _ = pair
        src, src_mr = register(a, 64)
        dst, dst_mr = register(b, 64)
        woke = []

        def waiter():
            yield cq_a.wait()
            woke.append(cluster.sim.now)

        cluster.sim.spawn(waiter())
        qp_a.post_send(WorkRequest(opcode=Opcode.WRITE, size=64,
                                   local_addr=src.addr, lkey=src_mr.lkey,
                                   remote_addr=dst.addr, rkey=dst_mr.rkey))
        cluster.sim.run()
        assert len(woke) == 1 and woke[0] > 0

    def test_post_recv_requires_recv_opcode(self, pair):
        _, a, _, qp_a, _, _, _ = pair
        with pytest.raises(ValueError):
            qp_a.post_recv(WorkRequest(opcode=Opcode.SEND, size=1))

    def test_post_send_rejects_recv_opcode(self, pair):
        _, _, _, qp_a, _, _, _ = pair
        with pytest.raises(ValueError):
            qp_a.post_send(WorkRequest(opcode=Opcode.RECV, size=1))


class TestBandwidthContention:
    def test_fan_in_queues_on_receiver_ingress(self):
        """Multiple senders to one receiver serialize on its ingress pipe —
        the parameter-server hotspot the scalability experiment hinges on."""
        cluster = Cluster(3)
        recv = cluster.hosts[0]
        cqs, completions = [], []
        size = 8 * 1024 * 1024
        for sender in cluster.hosts[1:]:
            cq = sender.nic.create_cq()
            qp_s = sender.nic.create_qp(cq)
            qp_r = recv.nic.create_qp(recv.nic.create_cq())
            qp_s.connect(qp_r)
            src, src_mr = register(sender, size)
            dst, dst_mr = register(recv, size)
            qp_s.post_send(WorkRequest(
                opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
            cqs.append(cq)
        cluster.sim.run()
        for cq in cqs:
            completions.extend(cq.poll())
        assert len(completions) == 2
        finish = max(c.timestamp for c in completions)
        one_transfer = cluster.cost.rdma_write_time(size)
        # Two transfers into one port take ~2x one transfer, not ~1x.
        assert finish > 1.8 * one_transfer

    def test_fan_out_queues_on_sender_egress(self):
        cluster = Cluster(3)
        sender = cluster.hosts[0]
        size = 8 * 1024 * 1024
        cq = sender.nic.create_cq()
        for receiver in cluster.hosts[1:]:
            qp_s = sender.nic.create_qp(cq)
            qp_r = receiver.nic.create_qp(receiver.nic.create_cq())
            qp_s.connect(qp_r)
            src, src_mr = register(sender, size)
            dst, dst_mr = register(receiver, size)
            qp_s.post_send(WorkRequest(
                opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
        cluster.sim.run()
        comps = cq.poll()
        assert len(comps) == 2
        finish = max(c.timestamp for c in comps)
        assert finish > 1.8 * cluster.cost.rdma_write_time(size)

    def test_disjoint_pairs_fully_overlap(self):
        cluster = Cluster(4)
        size = 8 * 1024 * 1024
        finish_times = []
        for s, r in [(0, 1), (2, 3)]:
            sender, receiver = cluster.hosts[s], cluster.hosts[r]
            cq = sender.nic.create_cq()
            qp_s = sender.nic.create_qp(cq)
            qp_r = receiver.nic.create_qp(receiver.nic.create_cq())
            qp_s.connect(qp_r)
            src, src_mr = register(sender, size)
            dst, dst_mr = register(receiver, size)
            qp_s.post_send(WorkRequest(
                opcode=Opcode.WRITE, size=size, local_addr=src.addr,
                lkey=src_mr.lkey, remote_addr=dst.addr, rkey=dst_mr.rkey))
            finish_times.append(cq)
        cluster.sim.run()
        stamps = [cq.poll()[0].timestamp for cq in finish_times]
        expected = cluster.cost.rdma_write_time(size)
        for stamp in stamps:
            assert stamp == pytest.approx(expected, rel=0.05)


class TestRegistration:
    def test_registration_cost_grows_with_size(self):
        cluster = Cluster(1)
        nic = cluster.hosts[0].nic
        small = nic.register_delay(4096)
        large = nic.register_delay(64 * 1024 * 1024)
        assert large > small > 0

    def test_mr_cap_enforced_at_nic(self):
        from repro.simnet import CostModel
        cluster = Cluster(1, cost=CostModel(mr_table_capacity=2))
        host = cluster.hosts[0]
        register(host, 64)
        register(host, 64)
        with pytest.raises(MemoryError_, match="exhausted"):
            register(host, 64)
