"""Unit tests for the tracer, span accounting, and metrics registry."""

import pytest

from repro.observability import (Counter, Histogram, MetricsRegistry, Tracer,
                                 executor_track, protocol_track)


class TestRegistry:
    def test_counter_accumulates(self):
        counter = Counter("ops")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_histogram_summary_stats(self):
        histogram = Histogram("sizes")
        for value in [10, 20, 30, 40]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 100
        assert histogram.mean == 25
        assert histogram.min == 10
        assert histogram.max == 40
        assert histogram.percentile(50) == 30
        assert histogram.percentile(0) == 10
        assert histogram.percentile(100) == 40

    def test_histogram_percentile_unsorted_input(self):
        histogram = Histogram("x")
        for value in [5, 1, 9, 3]:
            histogram.observe(value)
        assert histogram.percentile(100) == 9
        assert histogram.percentile(0) == 1

    def test_histogram_percentile_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_empty_histogram(self):
        histogram = Histogram("x")
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0
        assert histogram.to_dict()["count"] == 0

    def test_registry_lazy_creation_and_export(self):
        registry = MetricsRegistry()
        registry.counter("a").add(2)
        assert registry.counter("a") is registry.counter("a")
        registry.histogram("h").observe(7)
        exported = registry.to_dict()
        assert exported["counters"] == {"a": 2}
        assert exported["histograms"]["h"]["count"] == 1


class TestTracer:
    def test_record_clamps_negative_duration(self):
        tracer = Tracer()
        span = tracer.record("op", "x", "h", "t", 5.0, 4.0)
        assert span.end == 5.0
        assert span.duration == 0.0

    def test_account_accumulates_per_iteration(self):
        tracer = Tracer()
        tracer.account("h", "executor:w0", 0, "op", 0.0, 1.0)
        tracer.account("h", "executor:w0", 0, "op", 2.0, 2.5)
        tracer.account("h", "executor:w0", 1, "op", 3.0, 4.0)
        assert tracer.breakdown(iteration=0) == {"op": 1.5}
        assert tracer.breakdown() == {"op": 2.5}
        assert tracer.breakdown(host="other") == {}

    def test_account_emit_false_skips_span(self):
        tracer = Tracer()
        tracer.account("h", "t", 0, "sched", 0.0, 1.0, emit=False)
        assert tracer.spans == []
        assert tracer.breakdown()["sched"] == 1.0

    def test_account_zero_duration_is_noop(self):
        tracer = Tracer()
        tracer.account("h", "t", 0, "op", 1.0, 1.0)
        assert tracer.breakdowns == {}
        assert tracer.spans == []

    def test_mark_iteration_records_window_and_span(self):
        tracer = Tracer()
        tracer.mark_iteration(0, 0.0, 2.0)
        assert len(tracer.iteration_windows) == 1
        assert tracer.iteration_windows[0].duration == 2.0
        assert tracer.spans_by_category("iteration")[0].host == "cluster"

    def test_tracks_and_category_queries(self):
        tracer = Tracer()
        tracer.record("op", "a", "h1", "t1", 0.0, 1.0)
        tracer.record("verb", "b", "h2", "t2", 0.0, 2.0)
        tracer.record("op", "c", "h1", "t1", 1.0, 3.0)
        assert tracer.tracks() == [("h1", "t1"), ("h2", "t2")]
        assert tracer.categories() == {"op": 2, "verb": 1}
        assert tracer.total("op") == 3.0

    def test_reset_clears_everything(self):
        tracer = Tracer()
        tracer.record("op", "a", "h", "t", 0.0, 1.0)
        tracer.account("h", "t", 0, "op", 0.0, 1.0)
        tracer.metrics.counter("c").add()
        tracer.mark_iteration(0, 0.0, 1.0)
        tracer.reset()
        assert tracer.spans == []
        assert tracer.breakdowns == {}
        assert tracer.iteration_windows == []
        assert tracer.metrics.counters == {}

    def test_track_helpers(self):
        assert executor_track("worker0") == "executor:worker0"
        assert protocol_track("worker0") == "protocol:worker0"
