"""Tests for the Chrome trace_event export and the capture sink."""

import json

import pytest

from repro.observability import (ChromeTraceStream, TraceBudget, Tracer,
                                 chrome_trace_events, to_chrome_trace,
                                 write_chrome_trace)
from repro.observability.capture import (capture_enabled, capture_run,
                                         configure_capture, flush_capture,
                                         reset_capture)


def _sample_tracer():
    tracer = Tracer()
    tracer.record("op", "MatMul:x", "server0", "executor:worker0", 0.001,
                  0.003, args={"iteration": 0})
    tracer.record("verb", "RDMA_WRITE 4096B", "server0", "nic:qp100",
                  0.002, 0.004)
    tracer.record("op", "Add:y", "server1", "executor:worker1", 0.001, 0.002)
    return tracer


class TestChromeExport:
    def test_processes_and_threads(self):
        events = chrome_trace_events(_sample_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert process_names == {"server0", "server1"}
        assert thread_names == {"executor:worker0", "nic:qp100",
                                "executor:worker1"}

    def test_span_events_microseconds(self):
        events = chrome_trace_events(_sample_tracer())
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 3
        op = next(e for e in spans if e["name"] == "MatMul:x")
        assert op["ts"] == 1000.0
        assert op["dur"] == 2000.0
        assert op["cat"] == "op"
        assert op["args"] == {"iteration": 0}

    def test_same_host_shares_pid_distinct_tid(self):
        events = chrome_trace_events(_sample_tracer())
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert spans["MatMul:x"]["pid"] == spans["RDMA_WRITE 4096B"]["pid"]
        assert spans["MatMul:x"]["tid"] != spans["RDMA_WRITE 4096B"]["tid"]
        assert spans["MatMul:x"]["pid"] != spans["Add:y"]["pid"]

    def test_pid_base_and_label(self):
        events = chrome_trace_events(_sample_tracer(), pid_base=101,
                                     label="runA")
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {101, 102}
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"runA/server0", "runA/server1"}

    def test_to_chrome_trace_shape(self):
        trace = to_chrome_trace(_sample_tracer())
        assert "traceEvents" in trace
        assert trace["displayTimeUnit"] == "ms"

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(_sample_tracer(), str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) > 0


class TestStreamingExport:
    def test_stream_matches_in_memory_export(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "stream.trace.json"
        with ChromeTraceStream(str(path)) as stream:
            stream.add_run(tracer)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"] == chrome_trace_events(tracer)
        assert loaded["displayTimeUnit"] == "ms"

    def test_event_cap_writes_truncation_marker(self, tmp_path):
        tracer = Tracer()
        for i in range(20):
            tracer.record("op", f"op{i}", "server0", "executor:w0",
                          float(i), float(i) + 0.5)
        path = tmp_path / "capped.trace.json"
        with ChromeTraceStream(str(path), max_events=5) as stream:
            stream.add_run(tracer)
        loaded = json.loads(path.read_text())
        spans = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 5
        (marker,) = [e for e in loaded["traceEvents"]
                     if e["name"] == "trace truncated"]
        assert marker["args"] == {"dropped_spans": 15,
                                  "reason": "event cap"}

    def test_metadata_exempt_from_cap(self, tmp_path):
        path = tmp_path / "meta.trace.json"
        with ChromeTraceStream(str(path), max_events=1) as stream:
            stream.add_run(_sample_tracer())
        loaded = json.loads(path.read_text())
        names = {e["args"]["name"] for e in loaded["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert names == {"server0", "server1"}  # attribution survives

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ChromeTraceStream(str(tmp_path / "x.json"), max_events=0)

    def test_budget_truncation_marker_in_events(self):
        tracer = Tracer(budget=TraceBudget(span_cap=2))
        for i in range(10):
            tracer.record("op", f"op{i}", "server0", "executor:w0",
                          float(i), float(i) + 0.5)
        events = chrome_trace_events(tracer)
        (marker,) = [e for e in events if e["name"] == "trace truncated"]
        assert marker["args"] == {"dropped_spans": 8,
                                  "reason": "trace budget"}


class TestCaptureSink:
    def teardown_method(self):
        reset_capture()

    def test_disabled_by_default(self):
        reset_capture()
        assert not capture_enabled()
        capture_run("x", _sample_tracer())  # no-op, must not raise
        assert flush_capture() == {}

    def test_merged_multi_run_trace(self, tmp_path):
        trace_path = tmp_path / "merged.trace.json"
        metrics_path = tmp_path / "runs.metrics.json"
        configure_capture(trace_out=str(trace_path),
                          metrics_json=str(metrics_path))
        assert capture_enabled()
        capture_run("run0", _sample_tracer(), meta={"servers": 2})
        capture_run("run1", _sample_tracer())
        written = flush_capture()
        assert set(written) == {"trace", "metrics"}

        trace = json.loads(trace_path.read_text())
        pids = {e["pid"] for e in trace["traceEvents"]}
        # Two runs land in disjoint pid ranges.
        assert pids == {1, 2, 101, 102}
        labels = {e["args"]["name"] for e in trace["traceEvents"]
                  if e.get("ph") == "M" and e["name"] == "process_name"}
        assert "run0/server0" in labels and "run1/server0" in labels

        metrics = json.loads(metrics_path.read_text())
        assert [r["label"] for r in metrics["runs"]] == ["run0", "run1"]
        assert metrics["runs"][0]["meta"] == {"servers": 2}
        assert metrics["runs"][0]["span_counts"]["op"] == 2

    def test_metrics_only_capture(self, tmp_path):
        metrics_path = tmp_path / "only.metrics.json"
        configure_capture(metrics_json=str(metrics_path))
        capture_run("solo", _sample_tracer())
        written = flush_capture()
        assert written == {"metrics": str(metrics_path)}
        assert json.loads(metrics_path.read_text())["runs"][0]["label"] == \
            "solo"

    def test_configure_resets_buffers(self, tmp_path):
        trace_path = tmp_path / "t.trace.json"
        configure_capture(trace_out=str(trace_path))
        capture_run("old", _sample_tracer())
        configure_capture(trace_out=str(trace_path))
        flush_capture()
        assert json.loads(trace_path.read_text())["traceEvents"] == []
