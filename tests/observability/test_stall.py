"""Stall-attribution tests: synthetic breakdowns and the end-to-end
acceptance property (components sum to the measured iteration time)."""

import pytest

from repro.core.rdma_comm import RdmaCommRuntime
from repro.distributed.runner import run_training_benchmark
from repro.models.zoo import get_model
from repro.observability import Tracer, build_stall_report


class TestStallReportUnit:
    def _tracer(self):
        tracer = Tracer()
        # Two executors; the slower one (w1) defines the iteration.
        tracer.account("h0", "executor:w0", 0, "op", 0.0, 0.6)
        tracer.account("h0", "executor:w0", 0, "poll_wait", 0.6, 0.8)
        tracer.account("h1", "executor:w1", 0, "op", 0.0, 0.7)
        tracer.account("h1", "executor:w1", 0, "wire_wait", 0.7, 1.0)
        tracer.account("h0", "protocol:w0", 0, "serialization", 0.1, 0.25)
        tracer.mark_iteration(0, 0.0, 1.0)
        return tracer

    def test_critical_path_is_slowest_executor(self):
        report = build_stall_report(self._tracer())
        assert len(report.iterations) == 1
        it = report.iterations[0]
        assert it.critical.track == "executor:w1"
        assert it.components == {"op": pytest.approx(0.7),
                                 "wire_wait": pytest.approx(0.3)}

    def test_coverage_exact_for_synthetic_data(self):
        it = build_stall_report(self._tracer()).iterations[0]
        assert it.accounted == pytest.approx(it.duration)
        assert it.coverage == pytest.approx(1.0)

    def test_overlapped_serialization_separated(self):
        it = build_stall_report(self._tracer()).iterations[0]
        assert it.overlapped_serialization == pytest.approx(0.15)
        assert "serialization" not in it.components

    def test_totals_and_fractions(self):
        report = build_stall_report(self._tracer())
        totals = report.totals()
        assert totals == {"op": pytest.approx(0.7),
                          "wire_wait": pytest.approx(0.3)}
        fractions = report.fractions()
        assert fractions["op"] == pytest.approx(0.7)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_render_and_to_dict(self):
        report = build_stall_report(self._tracer())
        text = report.render()
        assert "measured_ms" in text and "coverage" in text
        data = report.to_dict()
        assert data["iterations"][0]["coverage"] == pytest.approx(1.0)

    def test_empty_tracer_gives_empty_report(self):
        report = build_stall_report(Tracer())
        assert report.iterations == []
        assert report.fractions() == {}
        assert "stall shares" not in report.render()


class TestEndToEndAcceptance:
    """The ISSUE's acceptance criteria, checked as a test."""

    @pytest.fixture(scope="class")
    def traced_bench(self):
        return run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=3, strategy="ring", collect_trace=True)

    def test_components_sum_to_iteration_time(self, traced_bench):
        report = traced_bench.stall_report()
        assert len(report.iterations) == 3
        for it, measured in zip(report.iterations,
                                traced_bench.stats.iteration_times):
            assert it.duration == pytest.approx(measured)
            # The acceptance bound is 1%; the construction is exact, so
            # only float accumulation error remains.
            assert it.accounted == pytest.approx(measured, rel=1e-2)

    def test_spans_from_at_least_four_layers(self, traced_bench):
        cats = set(traced_bench.tracer.categories())
        assert {"op", "cq_poll", "verb", "collective"} <= cats

    def test_transfer_roles_tagged(self, traced_bench):
        roles = traced_bench.metrics.bytes_by_role()
        assert roles.get("collective-chunk", 0) > 0

    def test_metrics_registry_populated(self, traced_bench):
        registry = traced_bench.tracer.metrics
        assert registry.counter("arena_bytes_registered").value > 0
        assert registry.histogram("transfer_size_bytes").count > 0
        assert registry.histogram("cq_depth_at_wake").count > 0
        assert traced_bench.stats.observability is not None

    def test_tracing_does_not_perturb_the_clock(self, traced_bench):
        untraced = run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=3, strategy="ring")
        assert (untraced.stats.iteration_times
                == traced_bench.stats.iteration_times)

    def test_untraced_run_has_no_tracer(self):
        bench = run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=2, strategy="ring")
        assert bench.tracer is None
        assert bench.stall_report() is None


class TestOverlapEfficiencyUnit:
    def test_fully_hidden_wire(self):
        tracer = Tracer()
        tracer.account("h0", "executor:w0", 0, "op", 0.0, 1.0)
        tracer.record("wire", "xfer", "h0", "nic:wire", 0.2, 0.6)
        tracer.mark_iteration(0, 0.0, 1.0)
        it = build_stall_report(tracer).iterations[0]
        assert it.wire_busy == pytest.approx(0.4)
        assert it.overlap_efficiency == pytest.approx(1.0)

    def test_fully_exposed_wire(self):
        tracer = Tracer()
        tracer.account("h0", "executor:w0", 0, "op", 0.0, 0.6)
        tracer.account("h0", "executor:w0", 0, "wire_wait", 0.6, 1.0)
        tracer.record("wire", "xfer", "h0", "nic:wire", 0.6, 1.0)
        tracer.mark_iteration(0, 0.0, 1.0)
        it = build_stall_report(tracer).iterations[0]
        assert it.wire_busy == pytest.approx(0.4)
        assert it.overlap_efficiency == pytest.approx(0.0)

    def test_concurrent_wires_not_double_counted(self):
        tracer = Tracer()
        tracer.account("h0", "executor:w0", 0, "op", 0.0, 1.0)
        # two NICs busy over overlapping windows: union is [0.1, 0.5]
        tracer.record("wire", "a", "h0", "nic:wire", 0.1, 0.4)
        tracer.record("wire", "b", "h1", "nic:wire", 0.2, 0.5)
        tracer.mark_iteration(0, 0.0, 1.0)
        it = build_stall_report(tracer).iterations[0]
        assert it.wire_busy == pytest.approx(0.4)

    def test_spans_clipped_to_window(self):
        tracer = Tracer()
        tracer.account("h0", "executor:w0", 1, "op", 1.0, 2.0)
        # the transfer straddles the iteration boundary
        tracer.record("wire", "x", "h0", "nic:wire", 0.8, 1.3)
        tracer.mark_iteration(1, 1.0, 2.0)
        it = build_stall_report(tracer).iterations[0]
        assert it.wire_busy == pytest.approx(0.3)

    def test_no_wire_means_no_efficiency(self):
        tracer = Tracer()
        tracer.account("h0", "executor:w0", 0, "op", 0.0, 1.0)
        tracer.mark_iteration(0, 0.0, 1.0)
        report = build_stall_report(tracer)
        assert report.iterations[0].overlap_efficiency is None
        assert report.overlap_efficiency() is None
        assert "overlap efficiency" not in report.render()


class TestPrioritySchedulerAcceptance:
    """The end-to-end invariants must survive the priority scheduler."""

    @pytest.fixture(scope="class")
    def traced_bench(self):
        return run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=3, strategy="ring", fusion_bytes=8 * 1024 * 1024,
            priority_sched=True, eager_flush=True, collect_trace=True)

    def test_components_still_sum_exactly(self, traced_bench):
        assert not traced_bench.crashed
        report = traced_bench.stall_report()
        assert len(report.iterations) == 3
        for it, measured in zip(report.iterations,
                                traced_bench.stats.iteration_times):
            assert it.duration == pytest.approx(measured)
            assert it.accounted == pytest.approx(measured, rel=1e-2)

    def test_tracing_does_not_perturb_the_clock(self, traced_bench):
        untraced = run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=3, strategy="ring", fusion_bytes=8 * 1024 * 1024,
            priority_sched=True, eager_flush=True)
        assert (untraced.stats.iteration_times
                == traced_bench.stats.iteration_times)

    def test_overlap_efficiency_in_range(self, traced_bench):
        report = traced_bench.stall_report()
        efficiency = report.overlap_efficiency()
        assert efficiency is not None
        assert 0.0 <= efficiency <= 1.0
        for it in report.iterations:
            assert it.wire_busy > 0.0
            assert it.wire_busy <= it.duration + 1e-9

    def test_scheduler_raises_overlap_efficiency(self, traced_bench):
        barrier = run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=3, strategy="ring", fusion_bytes=8 * 1024 * 1024,
            priority_sched=False, eager_flush=False, collect_trace=True)
        barrier_eff = barrier.stall_report().overlap_efficiency()
        eager_eff = traced_bench.stall_report().overlap_efficiency()
        assert eager_eff > barrier_eff
        assert traced_bench.step_time < barrier.step_time


class TestDynamicProtocolSpans:
    def test_dynamic_edges_emit_metadata_and_read_phases(self):
        bench = run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=32,
            iterations=2, comm=RdmaCommRuntime(force_dynamic=True),
            strategy="ps", collect_trace=True)
        assert not bench.crashed
        # force_dynamic pushes every edge through the §3.3 two-phase
        # protocol: both phases must appear as spans.
        phases = {s.args.get("phase") for s in bench.tracer.spans
                  if s.category == "protocol" and s.args}
        assert "metadata-write" in phases
        assert "payload-read" in phases
        roles = bench.metrics.bytes_by_role()
        assert roles.get("dynamic-metadata", 0) > 0
        assert roles.get("dynamic-payload-read", 0) > 0
