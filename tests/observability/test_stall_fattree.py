"""Stall-report invariants on a fat tree with hierarchical allreduce.

The flat-ring acceptance tests live in test_stall.py; this file pins
the same invariants where they are easiest to break: a multi-rack
fabric with contended uplinks, rack-aware reduce phases, and (in one
case) a retention budget thinning the span stream.
"""

import pytest

from repro.distributed.runner import run_training_benchmark
from repro.models.spec import ModelSpec, VariableSpec


def _tiny_spec():
    return ModelSpec(
        name="Tiny",
        family="FCN",
        variables=(VariableSpec("v0", (64 * 1024,)),
                   VariableSpec("v1", (64 * 1024,))),
        sample_time=0.001)


FABRIC = dict(num_servers=8, batch_size=1, iterations=2,
              strategy="hierarchical", topology="fat-tree",
              hosts_per_rack=4, oversubscription=4.0)


class TestFatTreeStallInvariants:
    @pytest.fixture(scope="class")
    def traced_bench(self):
        return run_training_benchmark(_tiny_spec(), "RDMA",
                                      collect_trace=True, **FABRIC)

    def test_components_sum_to_iteration_time(self, traced_bench):
        assert not traced_bench.crashed
        report = traced_bench.stall_report()
        assert len(report.iterations) == 2
        for it, measured in zip(report.iterations,
                                traced_bench.stats.iteration_times):
            assert it.duration == pytest.approx(measured)
            assert it.accounted == pytest.approx(measured, rel=1e-2)
            assert it.coverage == pytest.approx(1.0, rel=1e-2)

    def test_link_contention_attributed(self, traced_bench):
        # 4:1 oversubscribed uplinks under an 8-way hierarchical
        # reduce must show up in the link-queue attribution.
        report = traced_bench.stall_report()
        contention = report.link_contention()
        assert contention > 0.0
        # queueing is wire-side delay; it never exceeds the run itself
        assert contention <= sum(it.duration for it in report.iterations)

    def test_tracing_does_not_perturb_the_fat_tree_clock(self,
                                                         traced_bench):
        untraced = run_training_benchmark(_tiny_spec(), "RDMA", **FABRIC)
        assert (untraced.stats.iteration_times
                == traced_bench.stats.iteration_times)

    def test_telemetry_rollups_cover_both_racks(self, traced_bench):
        telemetry = traced_bench.tracer.telemetry
        assert telemetry is not None
        rollups = {name for name in telemetry.sketches
                   if name.startswith("verb_latency:rack")}
        assert rollups == {"verb_latency:rack0", "verb_latency:rack1"}
        fleet = telemetry.sketches["verb_latency:fleet"]
        per_rack = sum(telemetry.sketches[name].count for name in rollups)
        assert fleet.count == per_rack

    def test_step_time_series_present_per_host(self, traced_bench):
        telemetry = traced_bench.tracer.telemetry
        hosts = {name.split(":", 1)[1] for name in telemetry.series
                 if name.startswith("step_time:")}
        assert hosts == {f"server{i}" for i in range(8)}
