"""Anomaly detectors: MAD stragglers, link hotspots, SLO burn rate."""

import pytest

from repro.observability import (Incident, detect_link_hotspots,
                                 detect_outliers, detect_stragglers,
                                 mad_zscores, slo_burn_alerts)


class TestMadZscores:
    def test_empty(self):
        assert mad_zscores({}) == {}

    def test_symmetric_population_small_z(self):
        stats = {f"h{i}": 10.0 for i in range(8)}
        for _, (_, median, z) in mad_zscores(stats).items():
            assert median == 10.0
            assert z == 0.0

    def test_outlier_dominates(self):
        stats = {f"h{i}": 10.0 + 0.01 * i for i in range(7)}
        stats["bad"] = 20.0
        scores = mad_zscores(stats)
        assert scores["bad"][2] > max(z for name, (_, _, z) in scores.items()
                                      if name != "bad") * 5

    def test_mad_floor_prevents_divide_by_zero(self):
        stats = {"a": 10.0, "b": 10.0, "c": 10.0, "d": 10.000001}
        scores = mad_zscores(stats)
        assert all(abs(z) < 1.0 for _, _, z in scores.values())


class TestDetectOutliers:
    def test_min_points_guard(self):
        stats = {"a": 1.0, "b": 1.0, "c": 100.0}
        assert detect_outliers(stats, min_points=4) == []

    def test_min_excess_guard(self):
        # Statistically extreme but only 10% above the median: a fleet
        # this uniform should not page anyone.
        stats = {f"h{i}": 10.0 + 1e-9 * i for i in range(7)}
        stats["h7"] = 11.0
        assert detect_outliers(stats) == []

    def test_high_side_only(self):
        stats = {f"h{i}": 10.0 + 0.01 * i for i in range(7)}
        stats["fast"] = 1.0  # a *fast* outlier is not a straggler
        assert detect_outliers(stats) == []

    def test_detects_and_ranks(self):
        stats = {f"h{i}": 10.0 + 0.05 * i for i in range(6)}
        stats["bad"] = 30.0
        stats["worse"] = 50.0
        names = [name for name, _, _, z in detect_outliers(stats)]
        assert names == ["worse", "bad"]


class TestDetectStragglers:
    def test_emits_structured_incident(self):
        stats = {f"server{i}": 1.0 + 0.001 * i for i in range(7)}
        stats["server7"] = 3.0
        incidents = detect_stragglers(stats, now=12.5)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.kind == "straggler"
        assert incident.subject == "server7"
        assert incident.time == 12.5
        assert incident.zscore > 3.5
        assert incident.details["metric"] == "verb_latency"
        out = incident.to_dict()
        assert out["subject"] == "server7"
        assert "flight" not in out  # empty flight omitted

    def test_clean_fleet_silent(self):
        stats = {f"server{i}": 1.0 + 0.001 * i for i in range(8)}
        assert detect_stragglers(stats, now=0.0) == []


class TestLinkHotspots:
    def test_idle_fabric_never_alerts(self):
        utils = {f"tor{i}-up": 0.01 + 0.001 * i for i in range(8)}
        utils["tor7-up"] = 0.2  # an outlier, but below the floor
        assert detect_link_hotspots(utils, now=0.0) == []

    def test_relative_hotspot(self):
        utils = {f"tor{i}-up": 0.40 + 0.001 * i for i in range(7)}
        utils["hot"] = 0.85
        incidents = detect_link_hotspots(utils, now=1.0)
        assert [i.subject for i in incidents] == ["hot"]
        assert incidents[0].severity == "warning"

    def test_absolute_saturation_alerts_even_when_uniform(self):
        utils = {f"tor{i}-up": 0.97 for i in range(6)}
        incidents = detect_link_hotspots(utils, now=1.0)
        assert len(incidents) == 6
        assert all(i.severity == "critical" for i in incidents)

    def test_uniform_busy_fabric_silent_below_absolute(self):
        utils = {f"tor{i}-up": 0.6 for i in range(8)}
        assert detect_link_hotspots(utils, now=0.0) == []


class TestSloBurn:
    @staticmethod
    def _samples(count, latency, t0=0.0, spacing=0.001):
        return [(t0 + i * spacing, latency) for i in range(count)]

    def test_healthy_traffic_silent(self):
        samples = self._samples(500, latency=0.005)
        assert slo_burn_alerts(samples, slo=0.025) == []

    def test_sustained_burn_is_one_incident(self):
        samples = self._samples(1000, latency=0.5)  # every request violates
        incidents = slo_burn_alerts(samples, slo=0.025, window=0.25)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.kind == "slo_burn"
        assert incident.severity == "critical"
        assert incident.value == 1.0
        assert incident.details["windows"] >= 3
        assert incident.details["samples"] == 1000

    def test_sparse_window_below_min_samples_ignored(self):
        samples = self._samples(5, latency=0.5)
        assert slo_burn_alerts(samples, slo=0.025) == []

    def test_partial_violation_below_threshold(self):
        good = self._samples(400, latency=0.005)
        bad = self._samples(40, latency=0.5, spacing=0.01)
        incidents = slo_burn_alerts(sorted(good + bad), slo=0.025,
                                    burn_threshold=0.25)
        assert incidents == []

    def test_separate_bursts_separate_incidents(self):
        burst1 = self._samples(100, latency=0.5, t0=0.0)
        burst2 = self._samples(100, latency=0.5, t0=2.0)
        calm = self._samples(100, latency=0.001, t0=1.0)
        incidents = slo_burn_alerts(sorted(burst1 + calm + burst2),
                                    slo=0.025, window=0.25)
        assert len(incidents) == 2
        assert incidents[0].time < incidents[1].time

    def test_degenerate_inputs(self):
        assert slo_burn_alerts([], slo=0.025) == []
        assert slo_burn_alerts([(0.0, 1.0)], slo=0.0) == []


class TestIncidentSerialization:
    def test_round_trip_fields(self):
        incident = Incident(kind="straggler", subject="server3", time=1.0,
                            severity="warning", value=2.0, baseline=1.0,
                            zscore=4.2, details={"metric": "verb_latency"},
                            flight=[{"category": "verb"}])
        out = incident.to_dict()
        assert out["zscore"] == 4.2
        assert out["flight"] == [{"category": "verb"}]
