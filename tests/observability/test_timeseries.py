"""Streaming time-series: P² sketches, decimating rings, rollups."""

import random

import pytest

from repro.observability import (P2Quantile, QuantileSketch, RingSeries,
                                 Telemetry, rack_label)


class TestP2Quantile:
    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_exact_below_five_samples(self):
        q = P2Quantile(0.5)
        for v in (30.0, 10.0, 20.0):
            q.observe(v)
        assert q.value == 20.0

    def test_empty_is_zero(self):
        assert P2Quantile(0.9).value == 0.0

    def test_median_of_uniform_stream(self):
        rng = random.Random(7)
        q = P2Quantile(0.5)
        for _ in range(5000):
            q.observe(rng.uniform(0.0, 100.0))
        assert q.value == pytest.approx(50.0, abs=3.0)

    def test_p99_of_uniform_stream(self):
        rng = random.Random(11)
        q = P2Quantile(0.99)
        for _ in range(5000):
            q.observe(rng.uniform(0.0, 100.0))
        assert q.value == pytest.approx(99.0, abs=2.0)

    def test_constant_stream(self):
        q = P2Quantile(0.9)
        for _ in range(100):
            q.observe(5.0)
        assert q.value == 5.0


class TestQuantileSketch:
    def test_exact_aggregates(self):
        sketch = QuantileSketch("lat", percentiles=(50,))
        for v in (1.0, 2.0, 3.0, 4.0):
            sketch.observe(v)
        assert sketch.count == 4
        assert sketch.total == 10.0
        assert sketch.min == 1.0
        assert sketch.max == 4.0
        assert sketch.mean == 2.5

    def test_to_dict_histogram_compatible(self):
        sketch = QuantileSketch("lat", percentiles=(50, 99))
        sketch.observe(1.0)
        out = sketch.to_dict()
        assert set(out) == {"count", "sum", "min", "max", "mean",
                            "p50", "p99"}

    def test_unknown_percentile_raises(self):
        sketch = QuantileSketch("lat", percentiles=(50,))
        with pytest.raises(KeyError):
            sketch.percentile(90)


class TestRingSeries:
    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            RingSeries("x", capacity=1)

    def test_no_decimation_below_capacity(self):
        ring = RingSeries("x", capacity=16)
        for i in range(10):
            ring.observe(float(i), float(i))
        assert ring.stride == 1
        assert len(ring.points) == 10

    def test_decimation_bounds_memory(self):
        ring = RingSeries("x", capacity=16)
        for i in range(10_000):
            ring.observe(float(i), float(i))
        assert len(ring.points) < 16
        assert ring.stride > 1

    def test_decimated_points_span_whole_run(self):
        ring = RingSeries("x", capacity=16)
        for i in range(1000):
            ring.observe(float(i), float(i))
        times = [t for t, _ in ring.points]
        assert times[0] == 0.0          # run start survives decimation
        assert times[-1] >= 500.0       # tail coverage, not just a prefix
        assert times == sorted(times)

    def test_aggregates_exact_despite_decimation(self):
        ring = RingSeries("x", capacity=8)
        values = list(range(1000))
        for i, v in enumerate(values):
            ring.observe(float(i), float(v))
        assert ring.count == 1000
        assert ring.total == float(sum(values))
        assert ring.min == 0.0
        assert ring.max == 999.0
        assert ring.last == 999.0
        assert ring.last_time == 999.0

    def test_to_dict_points_optional(self):
        ring = RingSeries("x")
        ring.observe(1.0, 2.0)
        assert "points" not in ring.to_dict()
        assert ring.to_dict(include_points=True)["points"] == [[1.0, 2.0]]


class TestRackLabel:
    def test_groups_by_index(self):
        assert rack_label("server0", 8) == "rack0"
        assert rack_label("server7", 8) == "rack0"
        assert rack_label("server12", 8) == "rack1"
        assert rack_label("server255", 8) == "rack31"

    def test_unknown_width_or_name(self):
        assert rack_label("server3", None) is None
        assert rack_label("fabric", 8) is None


class TestTelemetry:
    def test_observe_host_feeds_three_levels(self):
        telemetry = Telemetry(hosts_per_rack=2)
        telemetry.observe_host("verb_latency", "server3", 1.0, 5.0)
        assert "verb_latency:server3" in telemetry.series
        assert "verb_latency:rack1" in telemetry.sketches
        assert "verb_latency:fleet" in telemetry.sketches
        assert telemetry.sketches["verb_latency:fleet"].count == 1

    def test_span_digest_routes_verbs(self):
        telemetry = Telemetry(hosts_per_rack=4)
        telemetry.observe_span("verb", "server1", "nic:qp3", 1.0, 1.5)
        assert telemetry.series["verb_latency:server1"].last == 0.5
        # categories without a digest are ignored, not an error
        telemetry.observe_span("op", "server1", "executor:d", 0.0, 1.0)
        assert "op:server1" not in telemetry.series

    def test_span_digest_routes_link_queue(self):
        telemetry = Telemetry()
        telemetry.observe_span("link_queue", "fabric", "link:tor0-up",
                               2.0, 2.25)
        assert telemetry.series["link_queue_wait:tor0-up"].last == 0.25
        assert telemetry.sketches["link_queue_wait:fleet"].count == 1

    def test_host_statistic_excludes_rollups(self):
        telemetry = Telemetry(hosts_per_rack=2)
        for host, value in (("server0", 1.0), ("server1", 3.0)):
            telemetry.observe_host("verb_latency", host, 0.0, value)
        stats = telemetry.host_statistic("verb_latency", "mean")
        assert stats == {"server0": 1.0, "server1": 3.0}

    def test_host_statistic_percentile_and_unknown(self):
        telemetry = Telemetry()
        telemetry.observe_host("verb_latency", "server0", 0.0, 2.0)
        p50 = telemetry.host_statistic("verb_latency", "p50")
        assert p50["server0"] == 2.0
        with pytest.raises(ValueError):
            telemetry.host_statistic("verb_latency", "median")

    def test_to_dict_rollups_only_rack_and_fleet(self):
        telemetry = Telemetry(hosts_per_rack=2)
        telemetry.observe_host("verb_latency", "server0", 0.0, 1.0)
        out = telemetry.to_dict()
        assert set(out["rollups"]) == {"verb_latency:rack0",
                                       "verb_latency:fleet"}
        assert "verb_latency:server0" in out["series"]

    def test_memory_is_bounded(self):
        telemetry = Telemetry(hosts_per_rack=4, series_capacity=32)
        for i in range(20_000):
            telemetry.observe_span("verb", f"server{i % 8}", "nic:qp0",
                                   float(i), float(i) + 1e-6)
        assert len(telemetry.series) == 8
        for ring in telemetry.series.values():
            assert len(ring.points) < 32
        # rollups stay O(1) per rack + fleet
        assert telemetry.sketches["verb_latency:fleet"].count == 20_000
