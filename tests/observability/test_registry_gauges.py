"""Unit tests for gauges and configurable histogram percentiles."""

import pytest

from repro.observability import (DEFAULT_PERCENTILES, Gauge, Histogram,
                                 MetricsRegistry)
from repro.observability.registry import percentile_key


class TestGauge:
    def test_set_tracks_last_value_and_high_water(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 9

    def test_to_dict(self):
        gauge = Gauge("x")
        gauge.set(4.5)
        assert gauge.to_dict() == {"value": 4.5, "high_water": 4.5}

    def test_registry_lazy_creation(self):
        registry = MetricsRegistry()
        assert registry.gauge("g") is registry.gauge("g")
        registry.gauge("g").set(7)
        assert registry.to_dict()["gauges"]["g"]["value"] == 7

    def test_gauges_absent_from_export_when_unused(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        assert "gauges" not in registry.to_dict()


class TestGaugeHistory:
    def test_set_alone_keeps_no_history(self):
        gauge = Gauge("depth")
        gauge.set(3)
        assert gauge.history is None
        assert "history" not in gauge.to_dict()

    def test_sample_records_bounded_history(self):
        gauge = Gauge("util")
        for i in range(10_000):
            gauge.sample(float(i), float(i % 7))
        assert gauge.value == 9999 % 7
        assert gauge.high_water == 6.0
        assert len(gauge.history.points) < 128
        assert gauge.history.count == 10_000

    def test_to_dict_gains_history_only_when_sampled(self):
        gauge = Gauge("util")
        gauge.sample(1.0, 0.5)
        out = gauge.to_dict()
        assert out["value"] == 0.5
        assert out["history"]["count"] == 1

    def test_sample_moves_the_gauge_like_set(self):
        gauge = Gauge("util")
        gauge.sample(0.0, 9.0)
        gauge.sample(1.0, 2.0)
        assert gauge.value == 2.0
        assert gauge.high_water == 9.0


class TestHistogramCap:
    def test_cap_floor(self):
        with pytest.raises(ValueError):
            Histogram("lat", max_samples=1)

    def test_uncapped_keeps_everything(self):
        histogram = Histogram("lat")
        for value in range(5000):
            histogram.observe(float(value))
        assert histogram.count == 5000
        assert histogram._values and len(histogram._values) == 5000

    def test_cap_bounds_retained_samples(self):
        histogram = Histogram("lat", max_samples=64)
        for value in range(100_000):
            histogram.observe(float(value))
        assert len(histogram._values) < 64

    def test_aggregates_exact_despite_decimation(self):
        histogram = Histogram("lat", max_samples=32)
        values = [float(v) for v in range(1000)]
        for value in values:
            histogram.observe(value)
        assert histogram.count == 1000
        assert histogram.total == sum(values)
        assert histogram.min == 0.0
        assert histogram.max == 999.0
        assert histogram.mean == pytest.approx(sum(values) / 1000)

    def test_quantiles_degrade_gracefully(self):
        import random
        rng = random.Random(3)
        histogram = Histogram("lat", max_samples=256)
        for _ in range(10_000):
            histogram.observe(rng.uniform(0.0, 100.0))
        # half-resolution quantiles over a stationary stream, not
        # garbage: the median of uniform(0, 100) stays near 50
        assert histogram.percentile(50) == pytest.approx(50, abs=10)
        assert histogram.percentile(99) == pytest.approx(99, abs=5)

    def test_registry_cap_inherited_by_new_histograms(self):
        registry = MetricsRegistry(histogram_max_samples=16)
        histogram = registry.histogram("h")
        for value in range(1000):
            histogram.observe(float(value))
        assert len(histogram._values) < 16
        assert histogram.count == 1000


class TestPercentileKeys:
    def test_integer_percentiles_render_without_decimal(self):
        assert percentile_key(50) == "p50"
        assert percentile_key(99) == "p99"

    def test_fractional_percentiles_keep_the_fraction(self):
        assert percentile_key(99.9) == "p99.9"

    def test_default_list_includes_the_tail(self):
        assert 99.9 in DEFAULT_PERCENTILES


class TestConfigurablePercentiles:
    def test_to_dict_default_includes_p999(self):
        histogram = Histogram("lat")
        for value in range(1, 1001):
            histogram.observe(float(value))
        exported = histogram.to_dict()
        for percentile in DEFAULT_PERCENTILES:
            assert percentile_key(percentile) in exported
        assert exported["p99.9"] >= exported["p99"] >= exported["p50"]

    def test_constructor_percentiles_override_default(self):
        histogram = Histogram("lat", percentiles=(25, 75))
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        exported = histogram.to_dict()
        assert "p25" in exported and "p75" in exported
        assert "p99" not in exported

    def test_to_dict_percentiles_argument_wins(self):
        histogram = Histogram("lat")
        histogram.observe(1.0)
        exported = histogram.to_dict(percentiles=(10,))
        assert "p10" in exported
        assert "p99" not in exported
