"""Unit tests for gauges and configurable histogram percentiles."""

import pytest

from repro.observability import (DEFAULT_PERCENTILES, Gauge, Histogram,
                                 MetricsRegistry)
from repro.observability.registry import percentile_key


class TestGauge:
    def test_set_tracks_last_value_and_high_water(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 9

    def test_to_dict(self):
        gauge = Gauge("x")
        gauge.set(4.5)
        assert gauge.to_dict() == {"value": 4.5, "high_water": 4.5}

    def test_registry_lazy_creation(self):
        registry = MetricsRegistry()
        assert registry.gauge("g") is registry.gauge("g")
        registry.gauge("g").set(7)
        assert registry.to_dict()["gauges"]["g"]["value"] == 7

    def test_gauges_absent_from_export_when_unused(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        assert "gauges" not in registry.to_dict()


class TestPercentileKeys:
    def test_integer_percentiles_render_without_decimal(self):
        assert percentile_key(50) == "p50"
        assert percentile_key(99) == "p99"

    def test_fractional_percentiles_keep_the_fraction(self):
        assert percentile_key(99.9) == "p99.9"

    def test_default_list_includes_the_tail(self):
        assert 99.9 in DEFAULT_PERCENTILES


class TestConfigurablePercentiles:
    def test_to_dict_default_includes_p999(self):
        histogram = Histogram("lat")
        for value in range(1, 1001):
            histogram.observe(float(value))
        exported = histogram.to_dict()
        for percentile in DEFAULT_PERCENTILES:
            assert percentile_key(percentile) in exported
        assert exported["p99.9"] >= exported["p99"] >= exported["p50"]

    def test_constructor_percentiles_override_default(self):
        histogram = Histogram("lat", percentiles=(25, 75))
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        exported = histogram.to_dict()
        assert "p25" in exported and "p75" in exported
        assert "p99" not in exported

    def test_to_dict_percentiles_argument_wins(self):
        histogram = Histogram("lat")
        histogram.observe(1.0)
        exported = histogram.to_dict(percentiles=(10,))
        assert "p10" in exported
        assert "p99" not in exported
