"""TraceBudget: sampling, host subsets, caps, flight recorder.

The contract under test: a budget bounds what the tracer *retains*
(the span list behind trace export) while never touching what it
*accounts* (the breakdown accumulators behind the stall report) or
what the telemetry digest sees — and never, ever, the simulated clock.
"""

import pytest

from repro.distributed.runner import (reset_comm_config,
                                      resolve_trace_hosts,
                                      run_training_benchmark,
                                      swap_comm_config, comm_config)
from repro.models.spec import ModelSpec, VariableSpec
from repro.observability import Telemetry, TraceBudget, Tracer


def make_budget(**kwargs):
    return TraceBudget(**kwargs)


class TestBudgetValidation:
    def test_rates_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            make_budget(default_rate=0.0)
        with pytest.raises(ValueError):
            make_budget(default_rate=1.5)
        with pytest.raises(ValueError):
            make_budget(sample_rates={"verb": -0.1})

    def test_span_cap_positive(self):
        with pytest.raises(ValueError):
            make_budget(span_cap=0)

    def test_stride_from_rate(self):
        budget = make_budget(default_rate=0.1,
                             sample_rates={"verb": 1.0, "wire": 0.25})
        assert budget.stride("verb") == 1
        assert budget.stride("wire") == 4
        assert budget.stride("op") == 10


class TestSampling:
    def test_deterministic_one_in_k(self):
        tracer = Tracer(budget=make_budget(default_rate=0.25))
        for i in range(100):
            tracer.record("verb", f"v{i}", "server0", "nic:qp0",
                          float(i), float(i) + 0.5)
        assert len(tracer.spans) == 25
        assert tracer.dropped_spans == 75
        assert tracer.truncated
        # stride sampling keeps every 4th, starting with the first
        assert [s.name for s in tracer.spans[:3]] == ["v0", "v4", "v8"]

    def test_per_category_rates_independent(self):
        budget = make_budget(sample_rates={"verb": 0.5}, default_rate=1.0)
        tracer = Tracer(budget=budget)
        for i in range(10):
            tracer.record("verb", "v", "server0", "nic:qp0", 0.0, 1.0)
            tracer.record("wire", "w", "server0", "nic:wire", 0.0, 1.0)
        assert len(tracer.spans_by_category("verb")) == 5
        assert len(tracer.spans_by_category("wire")) == 10

    def test_unbudgeted_tracer_keeps_everything(self):
        tracer = Tracer()
        for i in range(50):
            span = tracer.record("verb", "v", "server0", "nic:qp0", 0.0, 1.0)
            assert span is not None
        assert len(tracer.spans) == 50
        assert tracer.dropped_spans == 0
        assert not tracer.truncated


class TestHostSubset:
    def test_filters_to_selected_hosts(self):
        budget = make_budget(hosts=frozenset({"server0"}))
        tracer = Tracer(budget=budget)
        tracer.record("verb", "v", "server0", "nic:qp0", 0.0, 1.0)
        tracer.record("verb", "v", "server1", "nic:qp0", 0.0, 1.0)
        assert [s.host for s in tracer.spans] == ["server0"]
        assert tracer.dropped_spans == 1

    def test_hostless_timelines_exempt(self):
        budget = make_budget(hosts=frozenset({"server0"}))
        tracer = Tracer(budget=budget)
        tracer.mark_iteration(0, 0.0, 1.0)   # host "cluster"
        tracer.record("link_queue", "q", "fabric", "link:tor0", 0.0, 0.1)
        assert {s.host for s in tracer.spans} == {"cluster", "fabric"}
        assert tracer.dropped_spans == 0


class TestSpanCap:
    def test_cap_is_hard_ceiling(self):
        tracer = Tracer(budget=make_budget(span_cap=10))
        for i in range(50):
            tracer.record("verb", "v", "server0", "nic:qp0", 0.0, 1.0)
        assert len(tracer.spans) == 10
        assert tracer.dropped_spans == 40


class TestAccountingSurvivesBudget:
    def test_breakdowns_full_even_when_spans_sampled(self):
        budget = make_budget(default_rate=0.01)
        tracer = Tracer(budget=budget)
        for i in range(200):
            tracer.account("server0", "executor:worker0", 0, "op",
                           float(i), float(i) + 1.0)
        bucket = tracer.breakdowns[("server0", "executor:worker0", 0)]
        assert bucket["op"] == pytest.approx(200.0)
        assert len(tracer.spans) < 10  # the spans themselves are thinned

    def test_host_filter_never_touches_accounting(self):
        budget = make_budget(hosts=frozenset({"server0"}))
        tracer = Tracer(budget=budget)
        tracer.account("server5", "executor:worker5", 0, "op", 0.0, 2.0)
        bucket = tracer.breakdowns[("server5", "executor:worker5", 0)]
        assert bucket["op"] == 2.0
        assert tracer.spans == []


class TestTelemetrySeesEverything:
    def test_digest_before_sampling(self):
        budget = make_budget(default_rate=0.1)
        tracer = Tracer(budget=budget, telemetry=Telemetry(hosts_per_rack=4))
        for i in range(100):
            tracer.record("verb", "v", "server0", "nic:qp0",
                          float(i), float(i) + 0.001)
        assert len(tracer.spans) == 10
        fleet = tracer.telemetry.sketches["verb_latency:fleet"]
        assert fleet.count == 100  # every span digested, none sampled


class TestFlightRecorder:
    def test_ring_keeps_most_recent(self):
        budget = make_budget(default_rate=0.01, flight_len=4)
        tracer = Tracer(budget=budget)
        for i in range(20):
            tracer.record("verb", f"v{i}", "server0", "nic:qp0",
                          float(i), float(i) + 0.5)
        dump = tracer.flight_dump("server0")
        assert [s.name for s in dump] == ["v16", "v17", "v18", "v19"]

    def test_dump_all_hosts_sorted_by_start(self):
        budget = make_budget(flight_len=8)
        tracer = Tracer(budget=budget)
        tracer.record("verb", "b", "server1", "nic:qp0", 2.0, 3.0)
        tracer.record("verb", "a", "server0", "nic:qp0", 1.0, 2.0)
        assert [s.name for s in tracer.flight_dump()] == ["a", "b"]

    def test_reset_clears_flight_and_counters(self):
        budget = make_budget(default_rate=0.5)
        tracer = Tracer(budget=budget,
                        telemetry=Telemetry(hosts_per_rack=2))
        for _ in range(10):
            tracer.record("verb", "v", "server0", "nic:qp0", 0.0, 1.0)
        tracer.reset()
        assert tracer.spans == []
        assert tracer.dropped_spans == 0
        assert tracer.flight == {}
        assert tracer.telemetry.sketches == {}
        assert tracer.telemetry.hosts_per_rack == 2


def _tiny_spec():
    return ModelSpec(
        name="Tiny",
        family="FCN",
        variables=(VariableSpec("v0", (64 * 1024,)),
                   VariableSpec("v1", (64 * 1024,))),
        sample_time=0.001)


class TestBudgetedRunEndToEnd:
    def teardown_method(self):
        reset_comm_config()

    def test_budgeted_clocks_bit_identical_and_invariant_holds(self):
        """The acceptance criterion: sampling never perturbs timing,
        and the stall report still sums to the measured step time."""
        from dataclasses import replace

        spec = _tiny_spec()
        common = dict(num_servers=4, batch_size=1, iterations=2,
                      strategy="ring")
        bare = run_training_benchmark(spec, "RDMA", **common)
        full = run_training_benchmark(spec, "RDMA", collect_trace=True,
                                      **common)
        previous = swap_comm_config(
            replace(comm_config(), trace_sample=0.05, trace_hosts="2"))
        try:
            budgeted = run_training_benchmark(spec, "RDMA",
                                              collect_trace=True, **common)
        finally:
            swap_comm_config(previous)
        assert (full.stats.iteration_times
                == bare.stats.iteration_times)
        assert (budgeted.stats.iteration_times
                == bare.stats.iteration_times)
        assert budgeted.tracer.dropped_spans > 0
        assert len(budgeted.tracer.spans) < len(full.tracer.spans)
        report = budgeted.stall_report()
        for it in report.iterations:
            assert it.coverage == pytest.approx(1.0, abs=1e-6)


class TestResolveTraceHosts:
    def test_prefix_count(self):
        assert resolve_trace_hosts("2", 8) == {"server0", "server1"}

    def test_name_list(self):
        assert resolve_trace_hosts("server3, server5", 8) == \
            {"server3", "server5"}

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            resolve_trace_hosts("", 8)
        with pytest.raises(ValueError):
            resolve_trace_hosts("0", 8)
        with pytest.raises(ValueError):
            resolve_trace_hosts("9", 8)
        with pytest.raises(ValueError):
            resolve_trace_hosts("a,,b", 8)
