"""Integration tests: RPC over both transports, end to end."""

import pytest

from repro.rpc import (
    GrpcRdmaServer, GrpcTcpServer, Message, Payload, RpcError, check_reply,
    connect_grpc_rdma, connect_grpc_tcp)
from repro.simnet import Cluster, CostModel, Endpoint, MB


TRANSPORTS = ["tcp", "rdma"]


def make_pair(cluster, transport, port=4000):
    """Returns (server_facade, client_endpoint) across hosts 0 -> 1."""
    client_host, server_host = cluster.hosts[0], cluster.hosts[1]
    if transport == "tcp":
        server = GrpcTcpServer(server_host, port)
        client = connect_grpc_tcp(client_host, Endpoint(server_host.name, port))
    else:
        server = GrpcRdmaServer(server_host, port)
        client = connect_grpc_rdma(client_host, Endpoint(server_host.name, port))
    return server, client


def run_call(cluster, client, method, request):
    out = []

    def proc():
        reply = yield client.call(method, request)
        out.append(reply)

    done = cluster.sim.spawn(proc())
    cluster.sim.run_until_complete(done, limit=60.0)
    return out[0]


@pytest.fixture(params=TRANSPORTS)
def rig(request):
    cluster = Cluster(2)
    server, client = make_pair(cluster, request.param)
    return cluster, server, client, request.param


class TestRequestResponse:
    def test_echo(self, rig):
        cluster, server, client, _ = rig
        server.register("echo", lambda msg: Message(text=msg["text"]))
        reply = run_call(cluster, client, "echo", Message(text="hello"))
        assert reply["text"] == "hello"

    def test_concrete_payload_roundtrip(self, rig):
        cluster, server, client, _ = rig
        server.register("sum", lambda msg: Message(
            total=sum(msg["data"].data)))
        reply = run_call(cluster, client, "sum",
                         Message(data=Payload(data=bytes(range(100)))))
        assert reply["total"] == sum(range(100))

    def test_large_concrete_payload_exact(self, rig):
        """Multi-fragment concrete payload survives byte-exactly."""
        cluster, server, client, _ = rig
        blob = bytes(i % 251 for i in range(300_000))
        server.register("mirror", lambda msg: Message(back=msg["blob"]))
        reply = run_call(cluster, client, "mirror",
                         Message(blob=Payload(data=blob)))
        assert reply["back"].data == blob

    def test_virtual_payload_size_preserved(self, rig):
        cluster, server, client, _ = rig
        got = []

        def handler(msg):
            got.append(msg["tensor"].size)
            return Message(ok=1)

        server.register("put", handler)
        run_call(cluster, client, "put",
                 Message(tensor=Payload(size=64 * MB)))
        assert got == [64 * MB]

    def test_unknown_method_error(self, rig):
        cluster, server, client, _ = rig
        reply = run_call(cluster, client, "nope", Message())
        with pytest.raises(RpcError, match="unknown method"):
            check_reply(reply)

    def test_sequential_calls(self, rig):
        cluster, server, client, _ = rig
        state = {"n": 0}

        def bump(msg):
            state["n"] += msg["by"]
            return Message(n=state["n"])

        server.register("bump", bump)
        results = [run_call(cluster, client, "bump", Message(by=by))["n"]
                   for by in (1, 2, 3)]
        assert results == [1, 3, 6]

    def test_generator_handler_charges_time(self, rig):
        cluster, server, client, _ = rig

        def slow(msg):
            yield cluster.sim.timeout(0.5)
            return Message(done=1)

        server.register("slow", slow)
        reply = run_call(cluster, client, "slow", Message())
        assert reply["done"] == 1
        assert cluster.sim.now >= 0.5

    def test_concurrent_calls_pipeline(self, rig):
        cluster, server, client, _ = rig
        server.register("id", lambda msg: Message(v=msg["v"]))
        replies = []

        def proc():
            futures = [client.call("id", Message(v=i)) for i in range(5)]
            for future in futures:
                reply = yield future
                replies.append(reply["v"])

        done = cluster.sim.spawn(proc())
        cluster.sim.run_until_complete(done, limit=60.0)
        assert sorted(replies) == [0, 1, 2, 3, 4]


class TestTransportTiming:
    def _timed_transfer(self, transport, size):
        cluster = Cluster(2)
        server, client = make_pair(cluster, transport)
        server.register("put", lambda msg: Message(ok=1))
        start = cluster.sim.now
        run_call(cluster, client, "put", Message(t=Payload(size=size)))
        return cluster.sim.now - start

    def test_rdma_transport_faster_than_tcp(self):
        tcp = self._timed_transfer("tcp", 16 * MB)
        rdma = self._timed_transfer("rdma", 16 * MB)
        assert rdma < tcp

    def test_both_scale_with_size(self):
        for transport in TRANSPORTS:
            small = self._timed_transfer(transport, 1 * MB)
            large = self._timed_transfer(transport, 32 * MB)
            assert large > 2 * small


class TestGrpcRdmaCrash:
    def test_message_over_1gb_crashes(self):
        """Reproduces TensorFlow's gRPC.RDMA crash above 1 GB (§5.1)."""
        cluster = Cluster(2)
        server, client = make_pair(cluster, "rdma")
        server.register("put", lambda msg: Message(ok=1))
        failed = []

        def proc():
            try:
                yield client.call("put",
                                  Message(t=Payload(size=1024 * MB + 1)))
            except RpcError as exc:
                failed.append(str(exc))

        done = cluster.sim.spawn(proc())
        cluster.sim.run_until_complete(done, limit=300.0)
        assert failed and "exceeds the maximum" in failed[0]

    def test_tcp_does_not_crash_at_1gb(self):
        cluster = Cluster(2)
        server, client = make_pair(cluster, "tcp")
        server.register("put", lambda msg: Message(ok=1))
        reply = run_call(cluster, client, "put",
                         Message(t=Payload(size=1024 * MB + 1)))
        assert reply["ok"] == 1


class TestFlowControl:
    def test_many_large_messages_respect_ring(self):
        """Sending far more than the ring capacity must still complete
        (credits throttle the sender instead of overflowing)."""
        cluster = Cluster(2)
        server, client = make_pair(cluster, "rdma")
        server.register("put", lambda msg: Message(ok=1))
        replies = []

        def proc():
            futures = [client.call("put", Message(t=Payload(size=8 * MB)))
                       for _ in range(6)]
            for future in futures:
                reply = yield future
                replies.append(reply["ok"])

        done = cluster.sim.spawn(proc())
        cluster.sim.run_until_complete(done, limit=600.0)
        assert replies == [1] * 6


class TestMultipleClients:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_two_clients_one_server(self, transport):
        cluster = Cluster(3)
        server_host = cluster.hosts[2]
        port = 4100
        if transport == "tcp":
            server = GrpcTcpServer(server_host, port)
            clients = [connect_grpc_tcp(h, Endpoint(server_host.name, port))
                       for h in cluster.hosts[:2]]
        else:
            server = GrpcRdmaServer(server_host, port)
            clients = [connect_grpc_rdma(h, Endpoint(server_host.name, port))
                       for h in cluster.hosts[:2]]
        server.register("whoami", lambda msg: Message(tag=msg["tag"]))
        got = []

        def proc(client, tag):
            reply = yield client.call("whoami", Message(tag=tag))
            got.append(reply["tag"])

        procs = [cluster.sim.spawn(proc(c, i)) for i, c in enumerate(clients)]
        for p in procs:
            cluster.sim.run_until_complete(p, limit=60.0)
        assert sorted(got) == [0, 1]
