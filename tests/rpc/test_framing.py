"""Unit tests for fragmentation and reassembly."""

import pytest

from repro.rpc.framing import (
    Fragment, FramingError, HEADER_SIZE, Reassembler, fragment)


class TestFragment:
    def test_single_small_message(self):
        frags = fragment(1, b"hello", 0, max_fragment_body=1024)
        assert len(frags) == 1
        assert frags[0].body == b"hello"
        assert frags[0].count == 1

    def test_control_split_into_chunks(self):
        frags = fragment(2, b"x" * 2500, 0, max_fragment_body=1000)
        assert len(frags) == 3
        assert [f.body_size for f in frags] == [1000, 1000, 500]
        assert all(f.body is not None for f in frags)

    def test_virtual_tail_fragments(self):
        frags = fragment(3, b"ctl", 2048, max_fragment_body=1024)
        assert len(frags) == 3
        assert frags[0].body == b"ctl"
        assert frags[1].body is None and frags[1].body_size == 1024
        assert frags[2].body is None and frags[2].body_size == 1024

    def test_empty_message_gets_one_fragment(self):
        frags = fragment(4, b"", 0, max_fragment_body=64)
        assert len(frags) == 1
        assert frags[0].body_size == 0

    def test_wire_size_includes_header(self):
        frags = fragment(5, b"abc", 0, max_fragment_body=64)
        assert frags[0].wire_size == HEADER_SIZE + 3

    def test_bad_max_body(self):
        with pytest.raises(FramingError):
            fragment(6, b"x", 0, max_fragment_body=0)

    def test_header_roundtrip_concrete(self):
        frag = Fragment(msg_id=9, index=2, count=5, body_size=77, body=b"x" * 77)
        parsed = Fragment.parse_header(frag.header_bytes() + b"pad")
        assert (parsed.msg_id, parsed.index, parsed.count, parsed.body_size) \
            == (9, 2, 5, 77)
        assert parsed.header_says_concrete is True

    def test_header_roundtrip_virtual(self):
        frag = Fragment(msg_id=9, index=0, count=1, body_size=1 << 20)
        parsed = Fragment.parse_header(frag.header_bytes())
        assert parsed.header_says_concrete is False

    def test_short_header_rejected(self):
        with pytest.raises(FramingError):
            Fragment.parse_header(b"\x01\x02")


class TestReassembler:
    def test_in_order_reassembly(self):
        frags = fragment(10, b"A" * 1500, 0, max_fragment_body=600)
        assembler = Reassembler()
        result = None
        for frag in frags:
            result = assembler.add(frag)
        assert result is not None
        assert result.control == b"A" * 1500
        assert result.virtual_size == 0

    def test_out_of_order_reassembly(self):
        frags = fragment(11, b"B" * 1000, 0, max_fragment_body=300)
        assembler = Reassembler()
        results = [assembler.add(f) for f in reversed(frags)]
        assert results[:-1] == [None] * (len(frags) - 1)
        assert results[-1].control == b"B" * 1000

    def test_interleaved_messages(self):
        fa = fragment(20, b"aa" * 400, 0, max_fragment_body=256)
        fb = fragment(21, b"bb" * 400, 0, max_fragment_body=256)
        assembler = Reassembler()
        done = {}
        for pair in zip(fa, fb):
            for frag in pair:
                result = assembler.add(frag)
                if result:
                    done[result.msg_id] = result
        assert done[20].control == b"aa" * 400
        assert done[21].control == b"bb" * 400

    def test_virtual_size_accumulates(self):
        frags = fragment(30, b"hdr", 5000, max_fragment_body=2048)
        assembler = Reassembler()
        result = None
        for frag in frags:
            result = assembler.add(frag)
        assert result.control == b"hdr"
        assert result.virtual_size == 5000
        assert result.total_size == 5003

    def test_duplicate_fragment_rejected(self):
        frags = fragment(40, b"x" * 100, 0, max_fragment_body=30)
        assembler = Reassembler()
        assembler.add(frags[0])
        with pytest.raises(FramingError, match="duplicate"):
            assembler.add(frags[0])

    def test_index_out_of_range(self):
        assembler = Reassembler()
        with pytest.raises(FramingError):
            assembler.add(Fragment(msg_id=1, index=3, count=3, body_size=0,
                                   body=b""))

    def test_partial_count_tracking(self):
        frags = fragment(50, b"y" * 100, 0, max_fragment_body=30)
        assembler = Reassembler()
        assembler.add(frags[0])
        assert assembler.partial_count == 1
        for frag in frags[1:]:
            assembler.add(frag)
        assert assembler.partial_count == 0
