"""Unit tests for the FaRM-style ring buffer."""

import pytest

from repro.rpc.ring_buffer import RingBuffer, RingBufferFull


class TestBasics:
    def test_push_pop(self):
        ring = RingBuffer(128)
        ring.push(b"one")
        ring.push(b"two")
        assert ring.pop() == b"one"
        assert ring.pop() == b"two"
        assert ring.pop() is None

    def test_peek_does_not_consume(self):
        ring = RingBuffer(128)
        ring.push(b"record")
        assert ring.peek() == b"record"
        assert ring.pop() == b"record"

    def test_empty_pop_none(self):
        assert RingBuffer(64).pop() is None

    def test_counters(self):
        ring = RingBuffer(256)
        for i in range(5):
            ring.push(bytes([i]))
        ring.pop()
        assert ring.records_written == 5
        assert ring.records_read == 1

    def test_drain(self):
        ring = RingBuffer(256)
        for i in range(4):
            ring.push(bytes([i]) * 3)
        assert ring.drain() == [b"\x00" * 3, b"\x01" * 3, b"\x02" * 3, b"\x03" * 3]
        assert ring.used == 0

    def test_capacity_too_small(self):
        with pytest.raises(ValueError):
            RingBuffer(4)


class TestWrapAround:
    def test_records_survive_wrap(self):
        ring = RingBuffer(64)
        payloads = [bytes([i]) * 20 for i in range(50)]
        for payload in payloads:
            ring.push(payload)
            assert ring.pop() == payload

    def test_record_straddles_boundary(self):
        ring = RingBuffer(40)
        ring.push(b"a" * 30)   # head now near the end
        assert ring.pop() == b"a" * 30
        ring.push(b"b" * 20)   # this one wraps
        assert ring.pop() == b"b" * 20

    def test_many_interleaved(self):
        ring = RingBuffer(100)
        import itertools
        gen = itertools.cycle([b"xy", b"z" * 17, b"w" * 5])
        queue = []
        for step, payload in zip(range(200), gen):
            if ring.fits(len(payload)):
                ring.push(payload)
                queue.append(payload)
            else:
                assert ring.pop() == queue.pop(0)
        while queue:
            assert ring.pop() == queue.pop(0)


class TestOverflow:
    def test_full_raises(self):
        ring = RingBuffer(32)
        ring.push(b"a" * 20)
        with pytest.raises(RingBufferFull, match="ring full"):
            ring.push(b"b" * 20)

    def test_oversized_record_rejected_even_when_empty(self):
        ring = RingBuffer(32)
        with pytest.raises(RingBufferFull, match="never fit"):
            ring.push(b"c" * 32)

    def test_space_freed_after_pop(self):
        ring = RingBuffer(32)
        ring.push(b"a" * 20)
        ring.pop()
        ring.push(b"b" * 20)  # fits again
        assert ring.pop() == b"b" * 20

    def test_fits_predicate(self):
        ring = RingBuffer(32)
        assert ring.fits(20)
        ring.push(b"a" * 20)
        assert not ring.fits(20)

    def test_free_used_accounting(self):
        ring = RingBuffer(100)
        assert ring.free == 100
        ring.push(b"x" * 10)
        assert ring.used == 14  # 4-byte length prefix + 10
        assert ring.free == 86
