"""Unit tests for the TLV wire format."""

import pytest

from repro.rpc.serialization import (
    Message, Payload, SerializationError, decode, encode)


def roundtrip(message):
    control, virtual = encode(message)
    return decode(control), virtual


class TestScalarFields:
    def test_int_roundtrip(self):
        msg, _ = roundtrip(Message(x=42, y=-7))
        assert msg["x"] == 42 and msg["y"] == -7

    def test_large_int(self):
        msg, _ = roundtrip(Message(n=2**62))
        assert msg["n"] == 2**62

    def test_float_roundtrip(self):
        msg, _ = roundtrip(Message(rate=0.125))
        assert msg["rate"] == 0.125

    def test_str_roundtrip(self):
        msg, _ = roundtrip(Message(name="tensor/W0:грad"))
        assert msg["name"] == "tensor/W0:грad"

    def test_bytes_roundtrip(self):
        msg, _ = roundtrip(Message(raw=b"\x00\xff\x7f"))
        assert msg["raw"] == b"\x00\xff\x7f"

    def test_empty_message(self):
        msg, virtual = roundtrip(Message())
        assert msg.fields == {}
        assert virtual == 0

    def test_bool_rejected(self):
        with pytest.raises(SerializationError):
            encode(Message(flag=True))

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode(Message(bad=object()))

    def test_field_order_preserved(self):
        msg, _ = roundtrip(Message(a=1, b=2, c=3))
        assert list(msg.fields) == ["a", "b", "c"]


class TestPayloads:
    def test_concrete_payload_roundtrip(self):
        msg, virtual = roundtrip(Message(data=Payload(data=b"abcdef")))
        assert msg["data"] == Payload(data=b"abcdef")
        assert virtual == 0

    def test_virtual_payload_roundtrip(self):
        msg, virtual = roundtrip(Message(data=Payload(size=1 << 30)))
        assert msg["data"].is_virtual
        assert msg["data"].size == 1 << 30
        assert virtual == 1 << 30

    def test_mixed_payloads(self):
        msg, virtual = roundtrip(Message(
            small=Payload(data=b"xy"), big=Payload(size=1000)))
        assert virtual == 1000
        assert msg["small"].data == b"xy"

    def test_payload_size_mismatch(self):
        with pytest.raises(SerializationError):
            Payload(size=5, data=b"four")

    def test_payload_needs_size_or_data(self):
        with pytest.raises(SerializationError):
            Payload()

    def test_negative_size(self):
        with pytest.raises(SerializationError):
            Payload(size=-1)

    def test_payload_bytes_property(self):
        msg = Message(a=Payload(size=100), b=Payload(data=b"12345"), c=7)
        assert msg.payload_bytes == 105

    def test_wire_size_counts_virtual(self):
        small = Message(p=Payload(data=b"x" * 10)).wire_size
        virtual = Message(p=Payload(size=10)).wire_size
        # Virtual marker encodes no content but wire size still counts it.
        assert virtual == pytest.approx(small, abs=16)


class TestLists:
    def test_int_list(self):
        msg, _ = roundtrip(Message(dims=[1, 28, 28, 3]))
        assert msg["dims"] == [1, 28, 28, 3]

    def test_mixed_list(self):
        msg, _ = roundtrip(Message(items=[1, "two", b"three", 4.0]))
        assert msg["items"] == [1, "two", b"three", 4.0]

    def test_payload_list(self):
        msg, virtual = roundtrip(Message(
            tensors=[Payload(size=10), Payload(data=b"real")]))
        assert virtual == 10
        assert msg["tensors"][1].data == b"real"

    def test_empty_list(self):
        msg, _ = roundtrip(Message(empty=[]))
        assert msg["empty"] == []

    def test_nested_list_rejected(self):
        with pytest.raises(SerializationError):
            encode(Message(bad=[[1]]))


class TestMalformedWire:
    def test_bad_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            decode(b"XXXX" + b"\x00" * 8)

    def test_truncated(self):
        control, _ = encode(Message(x=1))
        with pytest.raises(SerializationError):
            decode(control[:-3])

    def test_trailing_garbage(self):
        control, _ = encode(Message(x=1))
        with pytest.raises(SerializationError, match="trailing"):
            decode(control + b"\x99")

    def test_unknown_tag(self):
        control, _ = encode(Message(x=1))
        # Corrupt the value tag (after magic+count+namelen+name).
        corrupted = bytearray(control)
        corrupted[4 + 4 + 2 + 1] = 200
        with pytest.raises(SerializationError):
            decode(bytes(corrupted))


class TestMessageApi:
    def test_get_default(self):
        assert Message(x=1).get("y", "d") == "d"

    def test_contains(self):
        msg = Message(x=1)
        assert "x" in msg and "y" not in msg

    def test_setitem(self):
        msg = Message()
        msg["k"] = 5
        assert msg["k"] == 5

    def test_equality(self):
        assert Message(a=1) == Message(a=1)
        assert Message(a=1) != Message(a=2)

    def test_repr_mentions_fields(self):
        assert "x=1" in repr(Message(x=1))
