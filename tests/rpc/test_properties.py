"""Property-based tests (hypothesis) for the RPC substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.rpc.framing import Reassembler, fragment
from repro.rpc.ring_buffer import RingBuffer, RingBufferFull
from repro.rpc.serialization import Message, Payload, decode, encode


field_names = st.text(alphabet=string.ascii_lowercase + "_",
                      min_size=1, max_size=12)
scalar_values = st.one_of(
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
    st.binary(max_size=60),
)
payloads = st.one_of(
    st.binary(max_size=80).map(lambda b: Payload(data=b)),
    st.integers(min_value=0, max_value=1 << 40).map(
        lambda n: Payload(size=n)),
)
values = st.one_of(scalar_values, payloads,
                   st.lists(scalar_values, max_size=6))


class TestSerializationProperties:
    @settings(deadline=None)
    @given(fields=st.dictionaries(field_names, values, max_size=8))
    def test_roundtrip(self, fields):
        message = Message(**fields)
        control, virtual = encode(message)
        decoded = decode(control)
        assert decoded == message
        # Virtual byte count equals the sum of virtual payload sizes.
        expected_virtual = sum(
            v.size for v in fields.values()
            if isinstance(v, Payload) and v.is_virtual)
        assert virtual == expected_virtual

    @given(fields=st.dictionaries(field_names, scalar_values, max_size=6))
    def test_field_order_preserved(self, fields):
        message = Message(**fields)
        decoded = decode(encode(message)[0])
        assert list(decoded.fields) == list(message.fields)

    @given(fields=st.dictionaries(field_names, values, min_size=1,
                                  max_size=6),
           cut=st.integers(min_value=1, max_value=20))
    def test_truncation_always_detected(self, fields, cut):
        control, _ = encode(Message(**fields))
        if cut >= len(control):
            return
        import pytest
        from repro.rpc.serialization import SerializationError
        with pytest.raises(SerializationError):
            decode(control[:-cut])


class TestFramingProperties:
    @settings(max_examples=60, deadline=None)
    @given(control=st.binary(max_size=5000),
           virtual_factor=st.integers(min_value=0, max_value=200),
           max_body=st.integers(min_value=16, max_value=2048),
           shuffle_seed=st.integers(min_value=0, max_value=1 << 30))
    def test_fragment_reassemble_roundtrip(self, control, virtual_factor,
                                           max_body, shuffle_seed):
        virtual = virtual_factor * max_body // 3
        frags = fragment(42, control, virtual, max_fragment_body=max_body)
        # Body size bounded, indices complete.
        assert all(f.body_size <= max_body for f in frags)
        assert [f.index for f in frags] == list(range(len(frags)))
        import random
        order = list(frags)
        random.Random(shuffle_seed).shuffle(order)
        assembler = Reassembler()
        outcome = None
        for frag in order:
            result = assembler.add(frag)
            if result is not None:
                assert outcome is None  # completes exactly once
                outcome = result
        assert outcome is not None
        assert outcome.control == control
        assert outcome.virtual_size == virtual


class TestRingBufferProperties:
    @settings(max_examples=60)
    @given(st.data())
    def test_fifo_under_arbitrary_push_pop(self, data):
        capacity = data.draw(st.integers(min_value=32, max_value=512))
        ring = RingBuffer(capacity)
        model = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=80))):
            if model and data.draw(st.booleans()):
                assert ring.pop() == model.pop(0)
            else:
                record = data.draw(st.binary(min_size=0, max_size=capacity))
                try:
                    ring.push(record)
                    model.append(record)
                except RingBufferFull:
                    # Accounting must justify the refusal.
                    assert (len(record) + 4 > ring.free
                            or len(record) > ring.max_record_size())
        while model:
            assert ring.pop() == model.pop(0)
        assert ring.pop() is None
