"""Tests for the transformer zoo specs and their serving cost model."""

import pytest

from repro.models import TransformerSpec, get_model, paper_models, transformer
from repro.models.zoo import all_models, register_model


class TestRegistry:
    def test_transformers_registered(self):
        models = all_models()
        for name in ("TF-Tiny", "GPT-350M", "GPT-1.3B"):
            assert name in models
            assert isinstance(models[name], TransformerSpec)

    def test_excluded_from_paper_subset(self):
        # paper_model_bytes == 0: the transformers are zoo growth, not
        # Table 2 reproductions.
        assert not any(isinstance(spec, TransformerSpec)
                       for spec in paper_models().values())

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            @register_model("GPT-350M")
            def _dup():
                return get_model("GPT-350M")

    def test_get_model_roundtrip(self):
        spec = get_model("GPT-350M")
        assert spec.family == "Transformer"
        assert spec.name == "GPT-350M"


class TestParameterCounts:
    def test_gpt_350m_class(self):
        spec = get_model("GPT-350M")
        params = spec.model_bytes // 4
        assert 300e6 < params < 400e6
        # 12 tensors per block + wte/wpe + final layernorm gain/bias.
        assert spec.num_variables == 12 * spec.layers + 4

    def test_gpt_1_3b_class(self):
        spec = get_model("GPT-1.3B")
        params = spec.model_bytes // 4
        assert 1.1e9 < params < 1.5e9

    def test_variables_contiguous_per_block(self):
        spec = get_model("TF-Tiny")
        names = [v.name for v in spec.variables]
        # Layer-contiguous order is what split_stages relies on to cut
        # the pipeline at block boundaries.
        assert names[0].startswith("wte")
        for layer in range(spec.layers):
            block = [n for n in names if n.startswith(f"h{layer}/")]
            first = names.index(block[0])
            assert names[first:first + len(block)] == block

    def test_bad_head_split_rejected(self):
        with pytest.raises(ValueError, match="heads"):
            transformer("T-bad", layers=2, hidden=100, heads=7)


class TestServingCostModel:
    def test_kv_bytes_per_token(self):
        spec = get_model("GPT-350M")
        # K and V, one per layer, hidden floats of 4 bytes each.
        assert spec.kv_bytes_per_token == 2 * spec.layers * spec.hidden * 4

    def test_prefill_floor_and_scaling(self):
        spec = get_model("TF-Tiny")
        assert spec.prefill_time(1) == spec.token_time
        long = 64 * spec.prefill_parallelism
        assert spec.prefill_time(long) == pytest.approx(
            spec.token_time * long / spec.prefill_parallelism)

    def test_prefill_monotone(self):
        spec = get_model("GPT-350M")
        times = [spec.prefill_time(t) for t in (1, 16, 64, 256, 2048)]
        assert times == sorted(times)

    def test_decode_flat_then_linear(self):
        spec = get_model("GPT-350M")
        sat = spec.width_saturation
        assert spec.decode_step_time(1) == spec.decode_step_time(sat)
        assert spec.decode_step_time(4 * sat) == pytest.approx(
            4 * spec.decode_step_time(sat))

    def test_training_serving_cost_coupling(self):
        # One training sample processes seq_len tokens through forward
        # + backward (~3x forward) on the prefill-parallel engine.
        spec = get_model("GPT-350M")
        assert spec.sample_time == pytest.approx(
            3 * spec.seq_len * spec.token_time / spec.prefill_parallelism)
