"""Unit tests for the convergence applications (§5.2, Figure 10)."""

import pytest

from repro.models.convergence import (
    APPS, TrainResult, cifar_spec, sentence_embedding_spec, seq2seq_spec,
    train_cifar, train_sentence_embedding, train_seq2seq)


class TestTrainers:
    def test_seq2seq_perplexity_falls(self):
        result = train_seq2seq(steps=200)
        assert result.metric_name == "perplexity"
        assert result.values[-1] < result.values[0] * 0.2

    def test_seq2seq_reaches_paper_threshold(self):
        """Paper: Seq2Seq converges to perplexity under 20."""
        result = train_seq2seq(steps=300)
        step = result.first_step_reaching(20.0)
        assert step < 300

    def test_cifar_loss_falls(self):
        result = train_cifar(steps=200)
        assert result.values[-1] < result.values[0] * 0.5

    def test_cifar_has_realistic_floor(self):
        """Label noise keeps the loss from collapsing to zero."""
        result = train_cifar(steps=400)
        assert result.values[-1] > 0.05

    def test_se_converges_toward_production_floor(self):
        """Paper: SE converges to a loss of ~4.5."""
        result = train_sentence_embedding(steps=400)
        assert result.values[0] > 4.5
        assert 4.3 < result.values[-1] < 4.6

    @pytest.mark.parametrize("train", [train_seq2seq, train_cifar,
                                       train_sentence_embedding])
    def test_deterministic(self, train):
        assert train(steps=50).values == train(steps=50).values

    def test_first_step_reaching_when_never(self):
        result = TrainResult(app="x", metric_name="loss", values=[5.0, 4.0])
        assert result.first_step_reaching(1.0) == 2


class TestCommProfiles:
    def test_se_has_an_over_1gb_tensor(self):
        """The tensor that crashes gRPC.RDMA, as TensorFlow did."""
        spec = sentence_embedding_spec()
        assert max(v.nbytes for v in spec.variables) > 1 << 30

    def test_seq2seq_is_embedding_heavy(self):
        spec = seq2seq_spec()
        embeddings = sum(v.nbytes for v in spec.variables
                         if "embedding" in v.name)
        assert embeddings > spec.model_bytes * 0.5

    def test_cifar_is_small(self):
        assert cifar_spec().model_bytes < 20 * (1 << 20)

    def test_apps_registry_complete(self):
        assert set(APPS) == {"Seq2Seq", "CIFAR", "SE"}
        for app in APPS.values():
            assert callable(app["spec"]) and callable(app["train"])
