"""Unit tests for the model zoo against Table 2 and Figure 7."""

import numpy as np
import pytest

from repro.models import (MB, ModelSpec, VariableSpec, all_models, calibrate,
                          get_model, paper_models)
from repro.models.spec import _conv, _dense


PAPER = {
    "AlexNet": (176.42, 16, 7.61e-3),
    "Inception-v3": (92.90, 196, 68.32e-3),
    "VGGNet-16": (512.32, 32, 30.92e-3),
    "LSTM": (35.93, 14, 33.33e-3),
    "GRU": (27.92, 11, 30.44e-3),
    "FCN-5": (204.47, 10, 4.88e-3),
}


class TestTable2Fidelity:
    @pytest.mark.parametrize("name", list(PAPER))
    def test_model_size_matches(self, name):
        spec = get_model(name)
        size_mb, _, _ = PAPER[name]
        assert abs(spec.model_mb - size_mb) / size_mb < 0.005

    @pytest.mark.parametrize("name", list(PAPER))
    def test_variable_count_matches(self, name):
        assert get_model(name).num_variables == PAPER[name][1]

    @pytest.mark.parametrize("name", list(PAPER))
    def test_sample_time_matches(self, name):
        assert get_model(name).sample_time == pytest.approx(PAPER[name][2])

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("ResNet-50")

    def test_paper_models_returns_six(self):
        # The zoo has grown transformer specs beyond the paper's six
        # benchmarks; the paper subset must stay exactly Table 2.
        assert sorted(paper_models()) == sorted(PAPER)
        assert len(all_models()) > 6


class TestFigure7Distribution:
    def test_headline_statistics(self):
        sizes = np.array([s for spec in paper_models().values()
                          for s in spec.tensor_sizes()])
        assert (sizes > 10 * 1024).mean() > 0.50
        assert (sizes > MB).mean() >= 0.20
        assert sizes[sizes > MB].sum() / sizes.sum() > 0.94

    def test_sizes_span_bytes_to_hundreds_of_mb(self):
        sizes = [s for spec in paper_models().values()
                 for s in spec.tensor_sizes()]
        assert min(sizes) < 10 * 1024
        assert max(sizes) > 100 * MB


class TestComputeTimeModel:
    def test_flat_below_saturation(self):
        spec = get_model("AlexNet")
        assert spec.compute_time(1) == spec.compute_time(spec.batch_saturation)

    def test_linear_above_saturation(self):
        spec = get_model("Inception-v3")
        sat = spec.batch_saturation
        assert spec.compute_time(4 * sat) == pytest.approx(
            4 * spec.compute_time(sat))

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            get_model("GRU").compute_time(0)


class TestCalibrate:
    def _vars(self):
        return _dense("big", 1000, 1000) + _dense("small", 10, 10)

    def test_total_matches_target(self):
        target = 3 * MB
        out = calibrate(self._vars(), target, adjust="big/weight")
        total = sum(v.nbytes for v in out)
        assert abs(total - target) < 1000 * 4  # within one matrix row

    def test_other_tensors_untouched(self):
        out = calibrate(self._vars(), 3 * MB, adjust="big/weight")
        small = next(v for v in out if v.name == "small/weight")
        assert small.shape == (10, 10)

    def test_impossible_target(self):
        with pytest.raises(ValueError):
            calibrate(self._vars(), 100, adjust="big/weight")


class TestVariableSpec:
    def test_nbytes(self):
        assert VariableSpec("v", (4, 4)).nbytes == 64

    def test_conv_helper(self):
        kernel, bias = _conv("c", 3, 3, 8, 16)
        assert kernel.shape == (3, 3, 8, 16)
        assert bias.shape == (16,)

    def test_conv_without_bias(self):
        assert len(_conv("c", 1, 1, 1, 1, bias=False)) == 1

    def test_model_spec_properties(self):
        spec = ModelSpec(name="m", family="FCN",
                         variables=(VariableSpec("v", (16,)),),
                         sample_time=1e-3)
        assert spec.model_bytes == 64
        assert spec.tensor_sizes() == [64]
