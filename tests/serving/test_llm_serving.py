"""End-to-end tests for the LLM serving plane (continuous + static)."""

import pytest

from repro.llm import run_llm_serving_benchmark
from repro.models import get_model


TINY = get_model("TF-Tiny")

COMMON = dict(replicas=2, qps=400.0, requests=60, seed=3)


class TestContinuousBatching:
    def test_all_requests_terminal_and_accounted(self):
        run = run_llm_serving_benchmark(TINY, mode="continuous", **COMMON)
        assert run.completed + run.shed == COMMON["requests"]
        assert run.decode_tokens > 0
        assert run.prefills >= run.completed

    def test_no_kv_leak_after_drain(self):
        run = run_llm_serving_benchmark(TINY, mode="continuous", **COMMON)
        assert run.kv_leaked_bytes == 0
        assert run.kv["outstanding"] == 0

    def test_metrics_populated(self):
        run = run_llm_serving_benchmark(TINY, mode="continuous", **COMMON)
        assert run.ttft.get("count") == run.completed
        assert run.tpot.get("p50", 0.0) > 0
        assert run.mean_width >= 1.0

    def test_deterministic(self):
        a = run_llm_serving_benchmark(TINY, mode="continuous", **COMMON)
        b = run_llm_serving_benchmark(TINY, mode="continuous", **COMMON)
        assert a.makespan == b.makespan
        assert a.to_dict() == b.to_dict()

    def test_beats_static_on_decode_throughput(self):
        cont = run_llm_serving_benchmark(TINY, mode="continuous", **COMMON)
        static = run_llm_serving_benchmark(TINY, mode="static", **COMMON)
        assert cont.decode_tokens_per_s > static.decode_tokens_per_s
        assert cont.ttft.get("p99", 0.0) <= static.ttft.get("p99", 0.0)


class TestKVPressure:
    def test_preemption_under_tiny_budget(self):
        # ~3 MB holds two mid-flight requests at most: growth denials
        # must preempt (evict + requeue), never deadlock or leak.
        run = run_llm_serving_benchmark(
            TINY, mode="continuous", kv_budget_bytes=3 * 1024 * 1024,
            **COMMON)
        assert run.completed + run.shed == COMMON["requests"]
        assert run.preemptions > 0 or run.kv["denials"] > 0
        assert run.kv_leaked_bytes == 0
        assert run.kv["peak_bytes"] <= 3 * 1024 * 1024

    def test_impossible_request_shed_not_hung(self):
        # Budget below a single prompt's footprint: everything sheds.
        run = run_llm_serving_benchmark(
            TINY, mode="continuous", kv_budget_bytes=16 * 4096, **COMMON)
        assert run.completed + run.shed == COMMON["requests"]
        assert run.kv_leaked_bytes == 0


class TestStaticBaseline:
    def test_all_terminal_and_leak_free(self):
        run = run_llm_serving_benchmark(TINY, mode="static",
                                        batch_timeout=20e-3, **COMMON)
        assert run.completed + run.shed == COMMON["requests"]
        assert run.kv_leaked_bytes == 0

    def test_batch_respects_kv_budget(self):
        # The static engine must chunk a closed batch down to what the
        # worst-case (prompt + max_new) footprints allow.
        run = run_llm_serving_benchmark(
            TINY, mode="static", batch_timeout=50e-3,
            kv_budget_bytes=4 * 1024 * 1024, **COMMON)
        assert run.completed + run.shed == COMMON["requests"]
        assert run.kv["peak_bytes"] <= 4 * 1024 * 1024
        assert run.kv_leaked_bytes == 0

    def test_longer_timeout_widens_batches(self):
        narrow = run_llm_serving_benchmark(TINY, mode="static",
                                           batch_timeout=1e-4, **COMMON)
        wide = run_llm_serving_benchmark(TINY, mode="static",
                                         batch_timeout=50e-3, **COMMON)
        assert wide.mean_width > narrow.mean_width


class TestValidation:
    def test_non_transformer_rejected(self):
        with pytest.raises(ValueError, match="transformer"):
            run_llm_serving_benchmark(get_model("FCN-5"), **COMMON)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_llm_serving_benchmark(TINY, mode="clockwork", **COMMON)
