"""Unit tests for the dynamic batcher's size-or-timeout closing rule."""

import pytest

from repro.serving import DynamicBatcher
from repro.simnet.simulator import Simulator


def _drain(store, count):
    """Process: pull ``count`` batches out of the store."""
    got = []

    def puller():
        for _ in range(count):
            batch = yield store.get()
            got.append(batch)
    return got, puller


class TestDynamicBatcher:
    def test_closes_at_max_batch(self):
        sim = Simulator()
        batcher = DynamicBatcher(sim, max_batch=4, timeout=1.0)
        got, puller = _drain(batcher.batches, 2)

        def feeder():
            for i in range(8):
                batcher.add(i)
                yield sim.timeout(1e-6)

        sim.spawn(batcher.run(), name="batcher")
        sim.spawn(feeder(), name="feeder")
        sim.run_until_complete(sim.spawn(puller(), name="puller"))
        assert [len(b) for b in got] == [4, 4]
        assert got[0] == [0, 1, 2, 3]

    def test_closes_at_timeout(self):
        sim = Simulator()
        batcher = DynamicBatcher(sim, max_batch=64, timeout=5e-3)
        got, puller = _drain(batcher.batches, 1)

        def feeder():
            batcher.add("a")
            yield sim.timeout(1e-3)
            batcher.add("b")
            # nothing else arrives: the 5 ms deadline must close it

        sim.spawn(batcher.run(), name="batcher")
        sim.spawn(feeder(), name="feeder")
        sim.run_until_complete(sim.spawn(puller(), name="puller"))
        assert got == [["a", "b"]]
        # The deadline is measured from the *first* request.
        assert sim.now == pytest.approx(5e-3)

    def test_batch_size_one_dispatches_immediately(self):
        sim = Simulator()
        batcher = DynamicBatcher(sim, max_batch=1, timeout=0.0)
        got, puller = _drain(batcher.batches, 3)

        def feeder():
            for i in range(3):
                batcher.add(i)
                yield sim.timeout(1e-6)

        sim.spawn(batcher.run(), name="batcher")
        sim.spawn(feeder(), name="feeder")
        sim.run_until_complete(sim.spawn(puller(), name="puller"))
        assert got == [[0], [1], [2]]

    def test_stop_flushes_pending(self):
        sim = Simulator()
        batcher = DynamicBatcher(sim, max_batch=8, timeout=10.0)
        got, puller = _drain(batcher.batches, 1)

        def feeder():
            batcher.add("x")
            batcher.add("y")
            yield sim.timeout(1e-3)
            batcher.stop()

        sim.spawn(batcher.run(), name="batcher")
        sim.spawn(feeder(), name="feeder")
        sim.run_until_complete(sim.spawn(puller(), name="puller"))
        assert got == [["x", "y"]]

    def test_batch_size_histogram(self):
        from repro.observability import MetricsRegistry
        sim = Simulator()
        metrics = MetricsRegistry()
        batcher = DynamicBatcher(sim, max_batch=2, timeout=1.0,
                                 metrics=metrics)
        got, puller = _drain(batcher.batches, 2)

        def feeder():
            for i in range(4):
                batcher.add(i)
                yield sim.timeout(1e-6)

        sim.spawn(batcher.run(), name="batcher")
        sim.spawn(feeder(), name="feeder")
        sim.run_until_complete(sim.spawn(puller(), name="puller"))
        hist = metrics.histograms["serving.batch_size"]
        assert hist.count == 2
        assert hist.mean == 2.0

    def test_rejects_bad_knobs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DynamicBatcher(sim, max_batch=0, timeout=1.0)
        with pytest.raises(ValueError):
            DynamicBatcher(sim, max_batch=1, timeout=-1.0)
