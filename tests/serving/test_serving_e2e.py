"""End-to-end tests for the serving benchmark: the headline effects.

These drive :func:`repro.serving.run_serving_benchmark` — the same
deployment the ``serving`` experiment measures — and assert the
properties the subsystem exists for: batching raises sustained
throughput, priority scheduling bounds the co-located p99, rerouting
survives a replica death, and everything is a pure function of the
seed.
"""

import pytest

from repro.models import get_model
from repro.serving import run_serving_benchmark


@pytest.fixture(scope="module")
def fcn5():
    return get_model("FCN-5")


class TestCompletion:
    def test_all_requests_reach_a_terminal_state(self, fcn5):
        result = run_serving_benchmark(fcn5, replicas=2, qps=1200.0,
                                       requests=200, seed=3)
        assert result.completed + result.shed + result.failed == 200
        assert result.completed > 0
        assert result.failed == 0
        assert result.torn_serves == 0
        assert result.makespan > 0

    def test_weight_publication_runs_alongside(self, fcn5):
        result = run_serving_benchmark(fcn5, replicas=2, qps=1200.0,
                                       requests=200, seed=3)
        assert result.publishes > 0
        assert result.swaps > 0

    def test_latency_report_has_tail_percentiles(self, fcn5):
        result = run_serving_benchmark(fcn5, replicas=2, qps=1200.0,
                                       requests=200, seed=3)
        for key in ("p50", "p90", "p99", "p99.9"):
            assert key in result.latency
        assert result.latency["p50"] <= result.latency["p99.9"]


class TestDeterminism:
    def test_same_seed_same_result(self, fcn5):
        kwargs = dict(replicas=2, qps=1400.0, requests=150, seed=11,
                      arrival="bursty")
        first = run_serving_benchmark(fcn5, **kwargs)
        second = run_serving_benchmark(fcn5, **kwargs)
        assert first.to_dict() == second.to_dict()

    def test_different_seed_different_arrivals(self, fcn5):
        first = run_serving_benchmark(fcn5, replicas=2, qps=1400.0,
                                      requests=150, seed=1)
        second = run_serving_benchmark(fcn5, replicas=2, qps=1400.0,
                                       requests=150, seed=2)
        assert first.makespan != second.makespan


class TestBatchingThroughput:
    def test_dynamic_batching_raises_sustained_throughput(self, fcn5):
        """Acceptance (a): batch=N beats batch=1 at fixed replicas."""
        common = dict(replicas=2, qps=1200.0, requests=300, seed=7)
        unbatched = run_serving_benchmark(fcn5, max_batch=1, **common)
        batched = run_serving_benchmark(fcn5, max_batch=8, **common)
        assert batched.throughput_rps > unbatched.throughput_rps
        # Per-replica forward capacity at batch 1 is ~410 rps, so two
        # replicas cannot sustain 1200 qps without batching: the
        # baseline saturates and sheds, the batched run keeps up.
        assert unbatched.shed > 0
        assert batched.shed == 0
        assert batched.mean_batch_size > 1.5


class TestSloPriority:
    def test_priority_scheduling_cuts_colocated_p99(self, fcn5):
        """Acceptance (b): serving priority beats FIFO under training."""
        common = dict(replicas=2, qps=1200.0, requests=300, seed=7,
                      max_batch=8, background_training=True)
        fifo = run_serving_benchmark(fcn5, priority_sched=False, **common)
        prio = run_serving_benchmark(fcn5, priority_sched=True, **common)
        assert prio.latency["p99"] < fifo.latency["p99"]
        assert prio.slo_attainment >= fifo.slo_attainment


class TestAdmissionControl:
    def test_overload_sheds_instead_of_collapsing(self, fcn5):
        result = run_serving_benchmark(fcn5, replicas=1, qps=4000.0,
                                       requests=200, seed=5, max_batch=1,
                                       admission_limit=16)
        assert result.shed > 0
        assert result.completed + result.shed + result.failed == 200
        # Completed requests still saw bounded queueing: at most the
        # admission window ahead of them.
        assert result.latency["max"] < result.makespan


class TestFailover:
    def test_dead_replica_detected_and_batches_rerouted(self, fcn5):
        result = run_serving_benchmark(
            fcn5, replicas=3, qps=1200.0, requests=300, seed=7,
            dispatch_timeout=0.03, kill_replica=(1, 0.05))
        assert result.replica_deaths == 1
        # Survivors absorb the rerouted batches: nothing is lost.
        assert result.completed == 300
        assert result.failed == 0

    def test_total_loss_degrades_gracefully(self, fcn5):
        result = run_serving_benchmark(
            fcn5, replicas=1, qps=1200.0, requests=200, seed=7,
            dispatch_timeout=0.03, kill_replica=(0, 0.05))
        assert result.replica_deaths == 1
        assert result.failed > 0
        # The run still drains: every request reaches a terminal state
        # rather than hanging the simulation.
        assert result.completed + result.shed + result.failed == 200
