"""Unit tests for the versioned weight-publication plane."""

import pytest

from repro.core.device import RdmaDevice
from repro.core.publication import (PublicationLayout, build_publication,
                                    park_until)
from repro.models.spec import ModelSpec, VariableSpec
from repro.simnet import Cluster, Endpoint


def tiny_spec(num_vars: int = 3, elements: int = 1024) -> ModelSpec:
    return ModelSpec(
        name="tiny", family="FCN",
        variables=tuple(VariableSpec(f"w{i}", (elements,))
                        for i in range(num_vars)),
        sample_time=1e-3, batch_saturation=8)


def build(replicas: int, mode: str = "direct"):
    cluster = Cluster(1 + replicas, name_prefix="pub")
    devices = [RdmaDevice.create(host, 2, 2, Endpoint(host.name, 7400 + i))
               for i, host in enumerate(cluster.hosts)]
    publisher, subscribers = build_publication(
        devices[0], devices[1:], tiny_spec(), mode=mode)
    return cluster, publisher, subscribers


def run_to_version(cluster, publisher, subscribers, version: int,
                   interval: float = 1e-3) -> None:
    sim = cluster.sim
    for subscriber in subscribers:
        sim.spawn(subscriber.watch(), name=f"sub-{subscriber.rank}")
    sim.spawn(publisher.run(interval), name="publisher")

    def main():
        yield from park_until(
            sim, cluster.hosts[0],
            lambda: all(s.active_version >= version for s in subscribers))

    sim.run_until_complete(sim.spawn(main(), name="main"), limit=30.0)
    publisher.stop()
    for subscriber in subscribers:
        subscriber.stop()


class TestLayout:
    def test_slots_and_trailer(self):
        spec = tiny_spec(num_vars=2, elements=256)
        layout = PublicationLayout(spec)
        assert len(layout.slots) == 2
        # Each slot is payload + a 4-byte stamp; the arena ends with a
        # 4-byte version trailer and the 1-byte epoch flag, flag last.
        assert layout.flag_offset == layout.size - 1
        assert layout.version_offset == layout.size - 5
        assert layout.payload_bytes == spec.model_bytes

    def test_stamp_follows_payload(self):
        layout = PublicationLayout(tiny_spec(num_vars=1, elements=16))
        slot = layout.slots[0]
        assert slot.stamp_offset == slot.offset + slot.nbytes


class TestDirectPublication:
    def test_replicas_converge(self):
        cluster, publisher, subscribers = build(replicas=3, mode="direct")
        run_to_version(cluster, publisher, subscribers, version=4)
        for subscriber in subscribers:
            assert subscriber.active_version >= 4
            assert subscriber.snapshot_consistent()
            assert subscriber.swaps >= 4

    def test_staleness_bounded_by_double_buffer(self):
        cluster, publisher, subscribers = build(replicas=2, mode="direct")
        run_to_version(cluster, publisher, subscribers, version=5)
        # The ack-gated double buffer keeps a replica at most one
        # version behind the last fully published snapshot.
        for subscriber in subscribers:
            assert publisher.version - subscriber.active_version <= 1

    def test_stamps_match_active_version(self):
        cluster, publisher, subscribers = build(replicas=2, mode="direct")
        run_to_version(cluster, publisher, subscribers, version=3)
        for subscriber in subscribers:
            stamps = subscriber.stamps()
            assert stamps == [subscriber.active_version] * len(stamps)


class TestChainPublication:
    def test_replicas_converge_via_relay(self):
        cluster, publisher, subscribers = build(replicas=3, mode="chain")
        run_to_version(cluster, publisher, subscribers, version=4)
        for subscriber in subscribers:
            assert subscriber.active_version >= 4
            assert subscriber.snapshot_consistent()

    def test_chain_root_egress_is_one_snapshot(self):
        from repro.collectives import broadcast_hops, root_egress_bytes
        spec = tiny_spec()
        assert root_egress_bytes(4, "chain", spec.model_bytes) == \
            spec.model_bytes
        assert root_egress_bytes(4, "direct", spec.model_bytes) == \
            4 * spec.model_bytes
        assert broadcast_hops(3, "chain") == [(-1, 0), (0, 1), (1, 2)]


class TestTornReadChaosSweep:
    """Acceptance: publication is torn-read-free under 20 fault seeds."""

    @pytest.mark.parametrize("seed", range(20))
    def test_no_torn_serves_under_faults(self, seed):
        from repro.models import get_model
        from repro.serving import run_serving_benchmark
        result = run_serving_benchmark(
            get_model("FCN-5"), replicas=2, qps=1500.0, requests=80,
            seed=seed, fault_seed=seed,
            fault_spec=("partial:role=weight-publish,p=0.15;"
                        "drop:role=weight-stamp,p=0.1;"
                        "drop:role=weight-ack,p=0.1"))
        # Every consumed snapshot had per-variable stamps matching the
        # arena's version trailer: no replica ever served a torn read.
        assert result.torn_serves == 0
        assert result.swaps > 0
        assert result.completed + result.shed + result.failed == 80
