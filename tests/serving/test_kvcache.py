"""Tests for the per-request KV-cache byte accounting."""

import pytest

from repro.serving.kvcache import KVCache, KVTracker


def _tracker(req_id=0, bpt=100, tokens=10):
    return KVTracker(req_id, bpt, tokens=tokens)


class TestTracker:
    def test_nbytes(self):
        assert _tracker(bpt=64, tokens=5).nbytes == 320


class TestAdmission:
    def test_admit_reserves_bytes(self):
        cache = KVCache(10_000)
        tracker = _tracker()
        assert cache.admit(tracker)
        assert cache.used == tracker.nbytes
        assert cache.admissions == 1
        assert cache.outstanding == 1

    def test_denial_counts_and_leaves_nothing(self):
        cache = KVCache(500)
        assert not cache.admit(_tracker(tokens=10))  # 1000 > 500
        assert cache.used == 0
        assert cache.denials == 1
        assert cache.outstanding == 0

    def test_double_admit_rejected(self):
        cache = KVCache(10_000)
        tracker = _tracker()
        cache.admit(tracker)
        with pytest.raises(ValueError):
            cache.admit(tracker)

    def test_fits(self):
        cache = KVCache(1000)
        cache.admit(_tracker(req_id=1, tokens=6))
        assert cache.fits(400)
        assert not cache.fits(401)
        assert cache.free_bytes == 400


class TestGrowth:
    def test_grow_charges_per_token(self):
        cache = KVCache(10_000)
        tracker = _tracker()
        cache.admit(tracker)
        assert cache.grow(tracker)
        assert tracker.tokens == 11
        assert cache.used == tracker.nbytes == 1100
        assert cache.grown_tokens == 1

    def test_grow_denied_at_budget(self):
        cache = KVCache(1000)
        tracker = _tracker()
        cache.admit(tracker)
        assert not cache.grow(tracker)  # would need 1100
        assert tracker.tokens == 10
        assert cache.used == 1000

    def test_peak_tracks_high_water(self):
        cache = KVCache(10_000)
        a, b = _tracker(0), _tracker(1)
        cache.admit(a)
        cache.admit(b)
        cache.release(a)
        assert cache.peak == 2000
        assert cache.used == 1000


class TestReleaseAndEvict:
    def test_release_returns_bytes(self):
        cache = KVCache(1000)
        tracker = _tracker()
        cache.admit(tracker)
        cache.release(tracker)
        assert cache.used == 0
        assert cache.outstanding == 0

    def test_release_unknown_rejected(self):
        cache = KVCache(1000)
        with pytest.raises(ValueError):
            cache.release(_tracker())

    def test_evict_counts_separately(self):
        cache = KVCache(10_000)
        tracker = _tracker()
        cache.admit(tracker)
        cache.evict(tracker)
        assert cache.used == 0
        assert cache.evictions == 1
        # An evicted request re-admits after preemption.
        assert cache.admit(tracker)

    def test_leak_detection_via_outstanding(self):
        cache = KVCache(10_000)
        a, b = _tracker(0), _tracker(1)
        cache.admit(a)
        cache.admit(b)
        cache.release(a)
        assert cache.outstanding == 1  # b never released: a leak

    def test_stats_shape(self):
        cache = KVCache(1000)
        stats = cache.stats()
        for key in ("budget_bytes", "used_bytes", "peak_bytes",
                    "admissions", "denials", "evictions"):
            assert key in stats
