"""Property-based chaos suite for the lossy-fabric transport.

The ``loss`` fault kind models a PFC-less fabric: posted verbs
probabilistically vanish from the wire and the recovery layer answers
with chunk-granular selective repeat instead of go-back-N.  The suite
pins the four properties that make that transport usable:

* **Bit-identical convergence** — whatever the loss schedule, the
  numerics of every workload equal the loss-free baseline exactly;
  loss may only ever cost time.
* **No deadlock** — every run completes within the simulated-time
  limit: each lost chunk is re-issued, degraded to TCP, or surfaced,
  never silently parked.
* **No double-consume** — a late original completion racing its own
  retransmit must not hand the receiver a stale tensor; observed, as
  in the legacy chaos suite, through the numerics identity.
* **O(lost) retransmission** — selective repeat re-sends only what the
  fabric dropped: retransmitted bytes stay within a small constant of
  the injected-loss bytes (go-back-N would re-send whole transfers and
  blow through this bound immediately).

A hypothesis sweep draws (loss rate x collective x worker count x
seed) schedules; a deterministic 20-seed sweep mirrors the legacy
chaos suite's discipline so every seed is exercised on every run.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.collectives import halving_doubling_allreduce, ring_allreduce
from repro.core import RdmaCommRuntime
from repro.graph import GraphBuilder, Session
from repro.simnet import Cluster, FaultInjector

_SIM_TIME_LIMIT = 30.0  # simulated seconds; a parked transfer trips this

#: selective repeat may re-send a chunk more than once when the retry
#: itself is lost, but each re-send is logged as its own loss, so the
#: identity is 1:1; the bound leaves room for TCP-degraded tails where
#: a lost chunk's bytes move off the RDMA wire instead
_MAX_RETX_RATIO = 3.0

SEEDS = list(range(20))

COLLECTIVES = {
    "ring": ring_allreduce,
    "halving_doubling": halving_doubling_allreduce,
}


def _run_collective(collective, num_workers, fault_spec=None, seed=0,
                    elements=120_000, iterations=2):
    """One allreduce workload; returns (numerics, cluster, comm)."""
    rng = np.random.default_rng(17)
    arrays = [rng.integers(-8, 8, size=elements).astype(np.float32)
              for _ in range(num_workers)]
    builder = GraphBuilder(f"lossy-{collective}")
    devices = [f"worker{i}" for i in range(num_workers)]
    inputs = [builder.constant(a, name=f"in{i}", device=dev)
              for i, (a, dev) in enumerate(zip(arrays, devices))]
    outputs = COLLECTIVES[collective](builder, inputs, devices)
    cluster = Cluster(num_workers)
    if fault_spec:
        cluster.install_faults(FaultInjector.from_spec(fault_spec,
                                                       seed=seed))
    comm = RdmaCommRuntime()
    session = Session(cluster, builder.finalize(),
                      {dev: cluster.hosts[i]
                       for i, dev in enumerate(devices)},
                      comm=comm)
    session.run(iterations=iterations, time_limit=_SIM_TIME_LIMIT)
    numerics = [session.numpy(out.node.name, out.index).tobytes()
                for out in outputs]
    return numerics, cluster, comm


_baselines = {}


def _baseline(collective, num_workers):
    key = (collective, num_workers)
    if key not in _baselines:
        numerics, _, comm = _run_collective(collective, num_workers)
        assert comm.recovery_snapshot() is None
        _baselines[key] = numerics
    return _baselines[key]


def _assert_lossy_invariants(collective, num_workers, loss_rate, seed):
    """The four transport properties for one (schedule, workload)."""
    numerics, cluster, comm = _run_collective(
        collective, num_workers, f"loss:p={loss_rate}", seed)
    # Completion within the time limit is the no-deadlock property; the
    # numerics identity is both convergence and no-double-consume (a
    # stale chunk consumed twice shifts every later iteration).
    assert numerics == _baseline(collective, num_workers), \
        (f"{collective}/n{num_workers} numerics diverged under "
         f"loss {loss_rate} seed {seed}")
    snapshot = comm.recovery_snapshot()
    injected = cluster.fault_plane.injected
    lost_bytes = sum(e["size"] for e in injected if e["kind"] == "loss")
    if not injected:
        assert snapshot is None or snapshot["retransmitted_bytes"] == 0
        return
    assert snapshot is not None
    assert snapshot["gave_up"] == 0, \
        f"seed {seed} exhausted a retry budget; lower p or raise budget"
    # O(lost): selective repeat re-sends only dropped chunks.
    assert snapshot["retransmitted_bytes"] <= _MAX_RETX_RATIO * lost_bytes, \
        (f"{collective}/n{num_workers} loss {loss_rate} seed {seed}: "
         f"retransmitted {snapshot['retransmitted_bytes']}B for only "
         f"{lost_bytes}B lost (> {_MAX_RETX_RATIO}x)")
    # Every loss event is answered by exactly one chunk re-issue as
    # long as nothing degraded to TCP: the byte identity is exact.
    if snapshot["fallback_transfers"] == 0:
        assert snapshot["retransmitted_bytes"] == lost_bytes
        assert snapshot["retransmits"] == len(injected)


class TestLossySweep:
    """Deterministic 20-seed sweep, legacy chaos-suite discipline."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ring_recovers_bit_identical(self, seed):
        _assert_lossy_invariants("ring", 3, 0.02, seed)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_halving_doubling_recovers_bit_identical(self, seed):
        _assert_lossy_invariants("halving_doubling", 4, 0.02, seed)


class TestLossyProperties:
    """Hypothesis over loss rate x collective x worker count x seed."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(loss_rate=st.sampled_from([1e-3, 5e-3, 0.02, 0.05]),
           collective=st.sampled_from(["ring", "halving_doubling"]),
           num_workers=st.sampled_from([2, 3, 4]),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_random_schedules_recover(self, loss_rate, collective,
                                      num_workers, seed):
        if collective == "halving_doubling" and num_workers == 3:
            num_workers = 4  # recursive halving needs a power of two
        _assert_lossy_invariants(collective, num_workers, loss_rate, seed)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(loss_rate=st.sampled_from([0.02, 0.08]),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_loss_with_stragglers_never_double_consumes(self, loss_rate,
                                                        seed):
        """Loss + straggler mixes race late originals against their own
        retransmits — the double-consume surface.  The exact-count
        identity does not hold (straggler retries are spurious), but
        the numerics identity must."""
        spec = f"loss:p={loss_rate};straggler:p=0.2,delay=25e-3"
        numerics, _, _comm = _run_collective("ring", 3, spec, seed)
        # Heavy straggling may exhaust a retry budget and degrade a
        # channel to TCP — graceful by design — so only the numerics
        # identity is asserted here.
        assert numerics == _baseline("ring", 3)


def test_lossless_spec_keeps_legacy_accounting():
    """A zero-probability loss rule still arms selective repeat, but a
    run without firings must not perturb numerics or report phantom
    retransmissions."""
    numerics, cluster, comm = _run_collective("ring", 3, "loss:p=0.0", 0)
    assert numerics == _baseline("ring", 3)
    assert cluster.fault_plane.injected == []
    snapshot = comm.recovery_snapshot()
    assert snapshot["retransmits"] == 0
    assert snapshot["retransmitted_bytes"] == 0
