"""Seeded chaos suite: every fixed seed must recover to exact numerics.

Each workload runs twice per seed: once fault-free (computed once and
cached — the injector seed doesn't change the clean run) and once with
a seeded fault schedule injected into the fabric.  The faulted run must

* complete (no deadlock, no crash),
* produce **bit-identical numerics** to the fault-free run — retries
  re-issue the same bytes, epochs keep stale flags from being consumed,
  so faults may only ever cost time, and
* retry exactly once per injected terminal fault, which pins the
  recovery layer's accounting to the injector's schedule.

The spec below uses only terminal kinds whose error surfaces stay on
the faulted verb (drop / blackhole / partial): those retry 1:1 with the
schedule.  qp_break additionally flush-fails innocent verbs posted on
the broken pair and stragglers cause spurious timeout retries, so those
kinds get completion + numerics (not exact-count) coverage in
``TestChaosOtherKinds``.
"""

import numpy as np
import pytest

from repro.collectives import ring_allreduce
from repro.core import RdmaCommRuntime
from repro.graph import GraphBuilder, Session, minimize
from repro.simnet import Cluster, FaultInjector

SEEDS = list(range(20))

#: terminal-only schedule: each injected fault costs exactly one retry
CHAOS_SPEC = "drop:p=0.08;partial:p=0.05,frac=0.6;blackhole:p=0.03"


# -- workloads -------------------------------------------------------------------------


def _install(cluster, fault_spec, seed):
    if fault_spec:
        cluster.install_faults(FaultInjector.from_spec(fault_spec, seed=seed))


def _run_ps_training(fault_spec=None, seed=0, force_dynamic=False):
    """PS-style training: static writes (or dynamic metadata+read)."""
    cluster = Cluster(2)
    _install(cluster, fault_spec, seed)
    rng = np.random.default_rng(7)
    b = GraphBuilder()
    x = b.placeholder([8, 4], name="x", device="worker0")
    y = b.placeholder([8, 2], name="y", device="worker0")
    w = b.variable([4, 2], name="w", device="ps0",
                   initializer=rng.normal(0, 0.3, (4, 2)))
    logits = b.matmul(x, w, device="worker0")
    loss, _ = b.softmax_cross_entropy(logits, y, name="loss",
                                      device="worker0")
    minimize(b, loss, lr=0.5)
    comm = RdmaCommRuntime(force_dynamic=force_dynamic)
    session = Session(cluster, b.finalize(),
                      {"ps0": cluster.hosts[0], "worker0": cluster.hosts[1]},
                      comm=comm)
    x_val = rng.normal(size=(8, 4)).astype(np.float32)
    y_val = np.eye(8, 2, dtype=np.float32)
    numerics = []
    for _ in range(5):
        session.run(feeds={"x": x_val, "y": y_val})
        numerics.append(session.numpy("loss").tobytes())
    numerics.append(session.variable("w").array.tobytes())
    return numerics, cluster, comm


def _run_static(fault_spec=None, seed=0):
    return _run_ps_training(fault_spec, seed, force_dynamic=False)


def _run_dynamic(fault_spec=None, seed=0):
    return _run_ps_training(fault_spec, seed, force_dynamic=True)


def _run_allreduce(fault_spec=None, seed=0):
    """Ring allreduce over three workers: collective-chunk transfers."""
    rng = np.random.default_rng(13)
    arrays = [rng.integers(-8, 8, size=24).astype(np.float32)
              for _ in range(3)]
    builder = GraphBuilder("chaos-ring")
    devices = [f"worker{i}" for i in range(3)]
    inputs = [builder.constant(a, name=f"in{i}", device=dev)
              for i, (a, dev) in enumerate(zip(arrays, devices))]
    outputs = ring_allreduce(builder, inputs, devices)
    cluster = Cluster(3)
    _install(cluster, fault_spec, seed)
    comm = RdmaCommRuntime()
    session = Session(cluster, builder.finalize(),
                      {dev: cluster.hosts[i]
                       for i, dev in enumerate(devices)},
                      comm=comm)
    session.run(iterations=2)
    numerics = [session.numpy(out.node.name, out.index).tobytes()
                for out in outputs]
    return numerics, cluster, comm


WORKLOADS = {
    "static": _run_static,
    "dynamic": _run_dynamic,
    "allreduce": _run_allreduce,
}

_baselines = {}


def _baseline(workload):
    if workload not in _baselines:
        numerics, _, comm = WORKLOADS[workload]()
        assert comm.recovery_snapshot() is None  # fault-free: no recovery
        _baselines[workload] = numerics
    return _baselines[workload]


def _assert_recovered(workload, seed):
    numerics, cluster, comm = WORKLOADS[workload](CHAOS_SPEC, seed)
    assert numerics == _baseline(workload), \
        f"{workload} numerics diverged under fault seed {seed}"
    injected = cluster.fault_plane.injected
    recovery = comm.recovery_snapshot()
    assert recovery is not None
    assert recovery["gave_up"] == 0, \
        f"seed {seed} exhausted a retry budget; raise it or lower p"
    assert recovery["retries"] == len(injected), \
        (f"{workload} seed {seed}: {recovery['retries']} retries != "
         f"{len(injected)} injected faults: {cluster.fault_plane.snapshot()}")
    return len(injected)


# -- the seeded sweep ------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_static_workload_recovers(seed):
    _assert_recovered("static", seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_dynamic_workload_recovers(seed):
    _assert_recovered("dynamic", seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_allreduce_workload_recovers(seed):
    _assert_recovered("allreduce", seed)


def test_sweep_actually_injects_faults():
    """Guard against a silently toothless sweep: across the fixed
    seeds, every workload must see a nonzero number of faults."""
    for workload in WORKLOADS:
        total = sum(_assert_recovered(workload, seed) for seed in SEEDS[:8])
        assert total > 0, f"{workload}: no faults injected over 8 seeds"


# -- kinds excluded from the exact-count sweep ----------------------------------------


class TestChaosOtherKinds:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_qp_break_heals_to_identical_numerics(self, seed):
        numerics, cluster, comm = _run_static(
            f"qp_break:count=1,skip={seed * 3}", seed)
        assert numerics == _baseline("static")
        recovery = comm.recovery_snapshot()
        assert recovery["qp_reconnects"] >= 1
        assert cluster.fault_plane.counts_by_kind() == {"qp_break": 1}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stragglers_only_cost_time(self, seed):
        # 30 ms extra departure latency exceeds the per-attempt
        # timeout, so the recovery layer retries a transfer that was
        # never lost — the duplicate must be harmless (epoch flags).
        numerics, cluster, comm = _run_static(
            "straggler:p=0.2,delay=30e-3", seed)
        assert numerics == _baseline("static")
        recovery = comm.recovery_snapshot()
        assert recovery["gave_up"] == 0
        if cluster.fault_plane.injected:
            assert recovery["timeouts"] >= 1

    def test_flap_window_recovers(self):
        numerics, cluster, comm = _run_static(
            "flap:host=server1,at=0.0,for=2e-4", 0)
        assert numerics == _baseline("static")
        assert cluster.fault_plane.counts_by_kind().get("flap", 0) >= 1
        assert comm.recovery_snapshot()["gave_up"] == 0
