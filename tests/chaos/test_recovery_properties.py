"""Property-based tests (hypothesis) for the recovery state machine.

Two liveness/safety properties the chaos sweep's fixed schedules can't
pin down on their own:

* **No deadlock**: for *any* generated fault schedule the executor
  finishes every iteration — each faulted transfer is retried, degraded
  to TCP, or surfaced as an error, never silently parked.
* **No double-consume**: a flag byte is consumed at most once per
  epoch.  Stale duplicates (a retried write whose first copy actually
  landed, e.g. after a straggler-induced spurious timeout) must be
  ignored, which the tests observe as bit-identical numerics: a
  double-consume would hand the receiver a stale tensor and shift
  every later iteration's values.

Workloads are kept tiny so hypothesis can afford dozens of end-to-end
simulator runs.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import RdmaCommRuntime
from repro.core.transfer import _next_epoch
from repro.graph import GraphBuilder, Session, minimize
from repro.simnet import Cluster, FaultInjector
from repro.simnet.faults import FaultRule

_SIM_TIME_LIMIT = 30.0  # seconds of simulated time; a hang trips this


def _run_training(injector=None, force_dynamic=False, iterations=3):
    cluster = Cluster(2)
    if injector is not None:
        cluster.install_faults(injector)
    rng = np.random.default_rng(21)
    b = GraphBuilder()
    x = b.placeholder([4, 3], name="x", device="worker0")
    y = b.placeholder([4, 2], name="y", device="worker0")
    w = b.variable([3, 2], name="w", device="ps0",
                   initializer=rng.normal(0, 0.3, (3, 2)))
    loss, _ = b.softmax_cross_entropy(b.matmul(x, w, device="worker0"), y,
                                      name="loss", device="worker0")
    minimize(b, loss, lr=0.4)
    session = Session(cluster, b.finalize(),
                      {"ps0": cluster.hosts[0], "worker0": cluster.hosts[1]},
                      comm=RdmaCommRuntime(force_dynamic=force_dynamic))
    feeds = {"x": rng.normal(size=(4, 3)).astype(np.float32),
             "y": np.eye(4, 2, dtype=np.float32)}
    numerics = []
    for _ in range(iterations):
        session.run(feeds=feeds, time_limit=_SIM_TIME_LIMIT)
        numerics.append(session.numpy("loss").tobytes())
    numerics.append(session.variable("w").array.tobytes())
    return numerics


_BASELINES = {False: _run_training(), True: _run_training(force_dynamic=True)}


def _rules(draw):
    kinds = st.sampled_from(
        ["drop", "blackhole", "partial", "qp_break", "flap", "straggler"])
    n = draw(st.integers(min_value=1, max_value=3))
    rules = []
    for _ in range(n):
        kind = draw(kinds)
        rules.append(FaultRule(
            kind=kind,
            probability=draw(st.floats(min_value=0.0, max_value=0.35)),
            count=draw(st.one_of(st.none(),
                                 st.integers(min_value=0, max_value=4))),
            skip=draw(st.integers(min_value=0, max_value=5)),
            delay=draw(st.sampled_from([1e-4, 1.5e-3, 30e-3])),
            frac=draw(st.floats(min_value=0.0, max_value=0.95)),
        ))
    return rules


schedules = st.composite(_rules)()
seeds = st.integers(min_value=0, max_value=2 ** 31)


class TestRecoveryStateMachine:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rules=schedules, seed=seeds)
    def test_random_schedules_never_deadlock_static(self, rules, seed):
        numerics = _run_training(FaultInjector(rules, seed=seed))
        assert numerics == _BASELINES[False]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rules=schedules, seed=seeds)
    def test_random_schedules_never_deadlock_dynamic(self, rules, seed):
        numerics = _run_training(FaultInjector(rules, seed=seed),
                                 force_dynamic=True)
        assert numerics == _BASELINES[True]

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=seeds, delay=st.sampled_from([25e-3, 40e-3, 60e-3]))
    def test_spurious_retries_never_double_consume(self, seed, delay):
        """Stragglers past the attempt timeout force duplicate flag
        writes with stale epochs; the receiver must consume each epoch
        exactly once or the numerics shift."""
        injector = FaultInjector(
            [FaultRule(kind="straggler", probability=0.3, delay=delay)],
            seed=seed)
        numerics = _run_training(injector)
        assert numerics == _BASELINES[False]


class TestEpochProtocol:
    @given(start=st.integers(min_value=1, max_value=255),
           steps=st.integers(min_value=1, max_value=600))
    def test_epochs_cycle_without_touching_empty(self, start, steps):
        epoch = start
        for _ in range(steps):
            nxt = _next_epoch(epoch)
            assert 1 <= nxt <= 255      # 0 always means "no flag yet"
            assert nxt != epoch         # a duplicate is always stale
            epoch = nxt

    @given(epoch=st.integers(min_value=0, max_value=255))
    def test_epoch_advance_is_a_255_cycle(self, epoch):
        seen = set()
        current = _next_epoch(epoch)
        while current not in seen:
            seen.add(current)
            current = _next_epoch(current)
        assert len(seen) == 255
