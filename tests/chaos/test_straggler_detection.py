"""Chaos sweep for the online straggler detector.

The ISSUE's acceptance bar: across 20 seeded straggler injections the
MAD detector must name the right host in at least 19, and a fault-free
run at default thresholds must raise zero incidents.  A deliberately
small synthetic model keeps the 21 runs inside a few seconds of
wall-clock without changing the detection physics (the injected 2 ms
verb delay dominates the model's baseline verb latency either way).
"""

import pytest

from repro.distributed.runner import run_training_benchmark
from repro.models.spec import ModelSpec, VariableSpec

SWEEP_SEEDS = range(20)


def _tiny_spec():
    return ModelSpec(
        name="Tiny",
        family="FCN",
        variables=(VariableSpec("v0", (64 * 1024,)),
                   VariableSpec("v1", (64 * 1024,))),
        sample_time=0.001)


def _run(fault_spec=None, fault_seed=None):
    return run_training_benchmark(
        _tiny_spec(), "RDMA", num_servers=8, batch_size=1, iterations=2,
        strategy="ring", collect_trace=True,
        fault_spec=fault_spec, fault_seed=fault_seed)


class TestStragglerSweep:
    def test_fault_free_run_is_silent(self):
        bench = _run()
        assert bench.incidents == []

    def test_sweep_detects_at_least_19_of_20(self):
        hits, misses, mislabels = 0, [], []
        for seed in SWEEP_SEEDS:
            victim = f"server{seed % 8}"
            bench = _run(
                fault_spec=f"straggler:host={victim},p=1.0,delay=0.002",
                fault_seed=seed)
            assert not bench.crashed
            stragglers = [i for i in bench.incidents
                          if i.kind == "straggler"]
            named = {i.subject for i in stragglers}
            if named == {victim}:
                hits += 1
            elif victim in named:
                mislabels.append((seed, sorted(named)))
            else:
                misses.append((seed, sorted(named)))
        # no run may blame an innocent host
        assert mislabels == []
        assert hits >= 19, (f"only {hits}/20 stragglers caught; "
                            f"missed: {misses}")

    def test_incident_carries_evidence(self):
        bench = _run(fault_spec="straggler:host=server3,p=1.0,delay=0.002",
                     fault_seed=7)
        (incident,) = [i for i in bench.incidents if i.kind == "straggler"]
        assert incident.subject == "server3"
        assert incident.zscore >= 3.5
        assert incident.value > incident.baseline
        assert incident.time == pytest.approx(bench.sim_horizon)
        # the flight recorder attaches the host's last spans as context
        assert incident.flight
        assert all(span["host"] == "server3" for span in incident.flight)
