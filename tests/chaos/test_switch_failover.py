"""Seeded switch-failure sweep: every seed must converge via fallback.

The in-network collective leans on switch state, so its failure story
gets its own chaos surface: ``switch-fail`` rules kill ToR/spine
aggregation engines (probabilistically, per seed) and every round that
sees an unhealthy switch must detour down the host-collective tree.
For each seed the faulted run must

* produce **bit-identical numerics** to the fault-free run — the
  fallback combines in the same member/rack order as the switches, so
  a detour may only ever cost time, and
* keep a **bounded retry cost**: each gradient byte crosses each tree
  edge at most once per round, so a fully-degraded round moves exactly
  ``2·(N-1)·M`` bytes and a switched round exactly ``N·M`` up plus
  ``N·M`` back down — there is no retry storm in between.
"""

import numpy as np
import pytest

from repro.collectives import innetwork_allreduce
from repro.core import RdmaCommRuntime
from repro.graph import GraphBuilder, Session
from repro.simnet import Cluster, FaultInjector
from repro.simnet.fabric import build_fat_tree
from repro.simnet.verbs import (ROLE_COLLECTIVE_CHUNK,
                                ROLE_INNETWORK_AGGREGATE)

SEEDS = list(range(12))

#: every switch (ToRs and spines) independently loses its aggregation
#: engine with p=0.5 — across the seed sweep this covers all-healthy,
#: partially-failed, and fully-failed fabrics
SWEEP_SPEC = "switch-fail:p=0.5"

N, HOSTS_PER_RACK, SIZE = 8, 4, 6000
ITERATIONS = 2


def _run(fault_spec=None, seed=0, iterations=ITERATIONS):
    rng = np.random.default_rng(seed=4242)
    arrays = [rng.integers(-8, 8, size=SIZE).astype(np.float32)
              for _ in range(N)]
    builder = GraphBuilder(f"chaos{N}x{HOSTS_PER_RACK}")
    devices = [f"worker{i}" for i in range(N)]
    inputs = [builder.constant(np.asarray(a, dtype=np.float32),
                               name=f"in{i}", device=dev)
              for i, (a, dev) in enumerate(zip(arrays, devices))]
    outputs = innetwork_allreduce(builder, inputs, devices,
                                  hosts_per_rack=HOSTS_PER_RACK)
    fabric = build_fat_tree(N, HOSTS_PER_RACK)
    cluster = Cluster(N, fabric=fabric)
    cluster.enable_metrics()
    if fault_spec:
        cluster.install_faults(FaultInjector.from_spec(fault_spec,
                                                       seed=seed))
    hosts = {dev: cluster.hosts[i] for i, dev in enumerate(devices)}
    session = Session(cluster, builder.finalize(), hosts,
                      comm=RdmaCommRuntime())
    session.run(iterations=iterations)
    results = [session.numpy(out.node.name, out.index).tobytes()
               for out in outputs]
    expected = np.sum(arrays, axis=0)
    return results, expected, session, cluster


@pytest.fixture(scope="module")
def clean():
    results, expected, session, cluster = _run()
    for raw in results:
        np.testing.assert_array_equal(np.frombuffer(raw, np.float32),
                                      expected)
    return results, cluster.sim.now


@pytest.mark.parametrize("seed", SEEDS)
def test_switch_failure_converges_bit_identically(seed, clean):
    clean_results, _ = clean
    results, _, session, cluster = _run(SWEEP_SPEC, seed=seed)
    assert results == clean_results

    snap = session.comm.innetwork.snapshot()["innet"]
    assert snap["rounds_switched"] + snap["rounds_degraded"] == ITERATIONS

    # Bounded retry cost: each round's wire volume is pinned by which
    # path it took — no chunk is ever sent twice on the same path.
    M = SIZE * 4
    roles = {}
    for t in cluster.metrics.transfers:
        roles[t.role] = roles.get(t.role, 0) + t.nbytes
    assert roles.get(ROLE_INNETWORK_AGGREGATE, 0) == \
        snap["rounds_switched"] * N * M
    assert roles.get(ROLE_COLLECTIVE_CHUNK, 0) == \
        snap["rounds_degraded"] * 2 * (N - 1) * M

    injector = cluster.fault_plane
    if snap["rounds_degraded"]:
        assert injector.counts_by_kind().get("switch_fail", 0) > 0


def test_sweep_covers_both_paths():
    # The point of sweeping seeds: p=0.5 must produce both healthy
    # rounds (switch path) and degraded rounds (host tree) somewhere.
    switched = degraded = 0
    for seed in SEEDS:
        _, _, session, _ = _run(SWEEP_SPEC, seed=seed, iterations=1)
        snap = session.comm.innetwork.snapshot()["innet"]
        switched += snap["rounds_switched"]
        degraded += snap["rounds_degraded"]
    assert switched > 0 and degraded > 0


def test_failure_window_heals():
    # A failure window that closes between rounds: the first round
    # degrades, the second finds the fabric healthy and re-enables
    # switch aggregation — degradation is per-round, not sticky.
    _, _, healthy_session, healthy_cluster = _run(iterations=1)
    t_switch = healthy_cluster.sim.now
    _, _, degraded_session, degraded_cluster = _run(
        "switch-fail:host=tor0,p=1.0", seed=1, iterations=1)
    t_tree = degraded_cluster.sim.now
    assert t_tree > t_switch  # the detour costs time, never correctness

    until = (t_switch + t_tree) / 2
    results, expected, session, _ = _run(
        f"switch-fail:host=tor0,p=1.0,until={until:.9f}", seed=1)
    for raw in results:
        np.testing.assert_array_equal(np.frombuffer(raw, np.float32),
                                      expected)
    snap = session.comm.innetwork.snapshot()["innet"]
    assert snap["rounds_degraded"] == 1
    assert snap["rounds_switched"] == 1
