"""Unit tests for the RDMA graph analyzer and allocation-site tracer."""

import numpy as np
import pytest

from repro.core import RdmaGraphAnalyzer, find_static_source
from repro.core.tracing import AllocationSiteTracer
from repro.graph import (DType, GraphBuilder, HostAllocator, Shape,
                         partition)
from repro.graph.allocator import ArenaAllocator
from repro.graph.executor import Executor
from repro.graph.transfer_api import NullComm
from repro.simnet import Cluster


def two_device_graph(static=True, send_variable=False):
    b = GraphBuilder()
    if send_variable:
        w = b.variable([32, 32], name="w", device="ps0",
                       initializer=np.zeros((32, 32), dtype=np.float32))
        g = b.constant(np.ones((32, 32), dtype=np.float32), device="ps0")
        step = b.apply_gradient(w, g, lr=0.1, name="step", device="ps0")
        b.identity(step, name="out", device="worker0")
    else:
        shape = [16, 16] if static else [None, 16]
        x = b.placeholder(shape, name="x", device="worker0")
        y = b.square(x, name="y", device="worker0")
        b.identity(y, name="sink", device="ps0")
    return partition(b.finalize())


class TestAnalyzerPlans:
    def test_static_edge_planned_static(self):
        plans = RdmaGraphAnalyzer(two_device_graph(static=True)).plan()
        (edge_plan,) = plans["ps0"].edges_in
        assert edge_plan.static

    def test_dynamic_edge_planned_dynamic(self):
        plans = RdmaGraphAnalyzer(two_device_graph(static=False)).plan()
        (edge_plan,) = plans["ps0"].edges_in
        assert not edge_plan.static
        assert edge_plan.ndims == 2

    def test_force_dynamic(self):
        analyzer = RdmaGraphAnalyzer(two_device_graph(static=True),
                                     force_dynamic=True)
        (edge_plan,) = analyzer.plan()["ps0"].edges_in
        assert not edge_plan.static

    def test_arena_sized_for_static_recv(self):
        plans = RdmaGraphAnalyzer(two_device_graph(static=True)).plan()
        nbytes = 16 * 16 * 4
        assert plans["ps0"].arena_size >= nbytes + 1

    def test_sender_headroom(self):
        plans = RdmaGraphAnalyzer(two_device_graph(static=True)).plan()
        nbytes = 16 * 16 * 4
        # Sender side reserves ~2x the outgoing volume for traced
        # tensors plus staging.
        assert plans["worker0"].arena_size >= 2 * nbytes

    def test_variable_marked_for_static_placement(self):
        plans = RdmaGraphAnalyzer(two_device_graph(send_variable=True)).plan()
        assert ("w", 0) in plans["ps0"].static_variable_sites

    def test_headroom_parameter(self):
        base = RdmaGraphAnalyzer(two_device_graph(static=False)).plan()
        padded = RdmaGraphAnalyzer(two_device_graph(static=False),
                                   dynamic_headroom=1 << 20).plan()
        assert padded["ps0"].arena_size >= base["ps0"].arena_size + (1 << 20)


class TestFindStaticSource:
    def test_direct_variable(self):
        b = GraphBuilder()
        w = b.variable([2], name="w", device="d")
        graph = b.finalize()
        assert find_static_source(graph, w.node) is w.node

    def test_through_apply_gradient(self):
        b = GraphBuilder()
        w = b.variable([2], name="w",
                       initializer=np.zeros(2, dtype=np.float32))
        g = b.constant(np.ones(2, dtype=np.float32))
        step = b.apply_gradient(w, g, lr=0.1)
        graph = b.finalize()
        assert find_static_source(graph, step.node).name == "w"

    def test_through_identity_chain(self):
        b = GraphBuilder()
        w = b.variable([2], name="w")
        alias = b.identity(b.identity(w))
        graph = b.finalize()
        assert find_static_source(graph, alias.node).name == "w"

    def test_compute_output_is_not_static(self):
        b = GraphBuilder()
        x = b.placeholder([2], name="x")
        y = b.square(x)
        graph = b.finalize()
        assert find_static_source(graph, y.node) is None


class TestTracer:
    def _executor(self):
        cluster = Cluster(1)
        b = GraphBuilder()
        b.placeholder([2], name="x", device="d")
        graph = b.finalize()
        executor = Executor(cluster.hosts[0], graph, "d", NullComm())
        executor.arena = ArenaAllocator(
            cluster.hosts[0].allocate(1 << 16, dense=True))
        return executor

    def test_latest_allocation_wins(self):
        executor = self._executor()
        tracer = AllocationSiteTracer(executor)
        tracer.observe_arena(executor.arena)
        t1 = executor.heap.allocate_tensor(DType.float32, Shape([4]),
                                           node_name="a", alloc_index=0)
        # Re-attribute the same address to another node (in-place pass).
        tracer._on_allocation(t1, "b", 1)
        tracer.on_send(t1)
        assert ("b", 1) in tracer.hot_sites
        assert ("a", 0) not in tracer.hot_sites

    def test_policy_routes_hot_sites_to_arena(self):
        executor = self._executor()
        tracer = AllocationSiteTracer(executor)
        tracer.observe_arena(executor.arena)
        tensor = executor.heap.allocate_tensor(DType.float32, Shape([4]),
                                               node_name="y", alloc_index=0)
        tracer.on_send(tensor)
        assert executor.allocation_policy("y", 0) is executor.arena
        assert executor.allocation_policy("z", 0) is None

    def test_static_sites_also_routed(self):
        executor = self._executor()
        tracer = AllocationSiteTracer(executor)
        tracer.static_sites = {("w", 0)}
        assert executor.allocation_policy("w", 0) is executor.arena

    def test_unknown_address_counts_miss(self):
        executor = self._executor()
        tracer = AllocationSiteTracer(executor)
        orphan = executor.heap.allocate_tensor(DType.float32, Shape([4]))
        tracer.on_send(orphan)  # allocated with no node attribution
        assert tracer.lookups_missed == 1
        assert tracer.hot_sites == set()
