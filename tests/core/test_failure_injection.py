"""Failure injection: the error paths a production library must own.

Covers the failure modes DESIGN.md calls out: NIC MR-table exhaustion
under per-tensor registration, arena exhaustion with a too-small plan,
the gRPC.RDMA 1 GB crash during training, bad remote credentials, and
protocol misuse (shape drift on a static edge, rank drift on a dynamic
edge).
"""

import numpy as np
import pytest

from repro.core import (DeviceError, RdmaCommRuntime, RdmaDevice,
                        StaticSender)
from repro.core.transfer import DynamicSender
from repro.distributed.rpc_comm import GrpcCommRuntime
from repro.graph import DType, GraphBuilder, Session, Shape
from repro.graph.allocator import AllocatorError, ArenaAllocator
from repro.simnet import Cluster, CostModel, Endpoint, MemoryError_


class TestMrTableExhaustion:
    def test_per_tensor_registration_hits_the_cap(self):
        cluster = Cluster(1, cost=CostModel(mr_table_capacity=8))
        host = cluster.hosts[0]
        device = RdmaDevice.create(host, 1, 1, Endpoint(host.name, 7900))
        with pytest.raises(MemoryError_, match="exhausted"):
            for _ in range(20):
                device.allocate_mem_region(4096)

    def test_deregistration_recovers(self):
        cluster = Cluster(1, cost=CostModel(mr_table_capacity=2))
        host = cluster.hosts[0]
        device = RdmaDevice.create(host, 1, 1, Endpoint(host.name, 7901))
        regions = [device.allocate_mem_region(4096) for _ in range(2)]
        device.free_mem_region(regions[0])
        device.allocate_mem_region(4096)  # must not raise


class TestArenaExhaustion:
    def test_undersized_headroom_fails_loudly(self):
        """A dynamic tensor bigger than the analyzer's estimate must
        produce an arena-exhaustion error, not silent corruption."""
        cluster = Cluster(2)
        b = GraphBuilder()
        x = b.placeholder([None, 16], name="x", device="worker0")
        y = b.identity(x, name="y", device="worker0")
        b.identity(y, name="sink", device="ps0")
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=RdmaCommRuntime())
        # Analyzer estimated for unknown dims up to 4096; feed 50k rows.
        huge = np.zeros((50_000, 16), dtype=np.float32)
        with pytest.raises(Exception, match="exhausted"):
            session.run(feeds={"x": huge})


class TestOversizedMessages:
    def test_grpc_rdma_crashes_training_with_huge_tensor(self):
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([280_000_000, 1], name="embed", device="ps0")
        b.identity(w, name="out", device="worker0")
        # ~1.1 GB variable: the reply exceeds gRPC.RDMA's max message.
        graph = b.finalize()
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=GrpcCommRuntime(transport="rdma"))
        with pytest.raises(Exception, match="exceeds the maximum"):
            session.run(time_limit=12000.0)

    def test_rdma_handles_the_same_tensor(self):
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([280_000_000, 1], name="embed", device="ps0")
        b.identity(w, name="out", device="worker0")
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=RdmaCommRuntime())
        stats = session.run(time_limit=12000.0)
        assert stats.iteration_times[0] > 0


class TestProtocolMisuse:
    def _sender_rig(self):
        cluster = Cluster(2)
        host = cluster.hosts[0]
        device = RdmaDevice.create(host, 1, 2, Endpoint(host.name, 7910))
        peer_host = cluster.hosts[1]
        peer = RdmaDevice.create(peer_host, 1, 2,
                                 Endpoint(peer_host.name, 7910))
        channel = device.get_channel(peer.endpoint, 1)
        arena_buf = host.allocate(1 << 16, dense=True)
        arena = ArenaAllocator(arena_buf)
        region = device.register_existing(arena_buf)
        return cluster, channel, arena, region, peer

    def test_static_sender_rejects_undersized_remote(self):
        cluster, channel, arena, region, peer = self._sender_rig()
        remote = peer.allocate_mem_region(64).descriptor()
        from repro.core.transfer import TransferState
        with pytest.raises(DeviceError, match="cannot hold"):
            StaticSender(channel=channel, remote=remote, nbytes=64,
                         arena=arena, arena_region=region,
                         state=TransferState())

    def test_static_sender_rejects_shape_drift(self):
        cluster, channel, arena, region, peer = self._sender_rig()
        remote = peer.allocate_mem_region(257).descriptor()
        from repro.core.transfer import TransferState
        sender = StaticSender(channel=channel, remote=remote, nbytes=256,
                              arena=arena, arena_region=region,
                              state=TransferState())
        executor = _FakeExecutor(cluster)
        wrong = arena.allocate_tensor(DType.float32, Shape([32]))  # 128 B
        process = cluster.sim.spawn(sender.send(executor, wrong))
        cluster.sim.run()
        with pytest.raises(DeviceError, match="static transfer expected"):
            _ = process.value

    def test_dynamic_sender_rejects_rank_drift(self):
        cluster, channel, arena, region, peer = self._sender_rig()
        from repro.core.transfer import TransferState
        from repro.graph.tensor import TensorMeta
        slot = peer.allocate_mem_region(TensorMeta.slot_size(2),
                                        dense=True).descriptor()
        sender = DynamicSender(channel=channel, meta_slot=slot, ndims=2,
                               arena=arena, arena_region=region,
                               state=TransferState())
        executor = _FakeExecutor(cluster)
        rank1 = arena.allocate_tensor(DType.float32, Shape([8]))
        process = cluster.sim.spawn(sender.send(executor, rank1))
        cluster.sim.run()
        with pytest.raises(DeviceError, match="rank changed"):
            _ = process.value

    def test_dynamic_sender_rejects_small_meta_slot(self):
        cluster, channel, arena, region, peer = self._sender_rig()
        from repro.core.transfer import TransferState
        slot = peer.allocate_mem_region(4, dense=True).descriptor()
        with pytest.raises(DeviceError, match="too small"):
            DynamicSender(channel=channel, meta_slot=slot, ndims=3,
                          arena=arena, arena_region=region,
                          state=TransferState())


class _FakeExecutor:
    """Just enough executor surface for protocol-level tests."""

    def __init__(self, cluster):
        self.sim = cluster.sim
        self.cost = cluster.cost
        self.host = cluster.hosts[0]


class TestInFlightFaults:
    """Faults landing *mid-transfer*, not at connection setup: the
    recovery layer must retry, re-establish, or degrade — and the
    training numerics must come out bit-identical to a clean run."""

    def _train(self, fault_spec=None, fault_seed=0, force_dynamic=False,
               retry_policy=None):
        from repro.simnet import FaultInjector
        cluster = Cluster(2)
        if fault_spec:
            cluster.install_faults(
                FaultInjector.from_spec(fault_spec, seed=fault_seed))
        rng = np.random.default_rng(11)
        b = GraphBuilder()
        x = b.placeholder([4, 3], name="x", device="worker0")
        y = b.placeholder([4, 2], name="y", device="worker0")
        w = b.variable([3, 2], name="w", device="ps0",
                       initializer=rng.normal(0, 0.3, (3, 2)))
        from repro.graph import minimize
        loss, _ = b.softmax_cross_entropy(
            b.matmul(x, w, device="worker0"), y, name="loss",
            device="worker0")
        minimize(b, loss, lr=0.4)
        comm = RdmaCommRuntime(force_dynamic=force_dynamic,
                               retry_policy=retry_policy)
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]}, comm=comm)
        feeds = {"x": rng.normal(size=(4, 3)).astype(np.float32),
                 "y": np.eye(4, 2, dtype=np.float32)}
        numerics = []
        for _ in range(3):
            session.run(feeds=feeds, time_limit=60.0)
            numerics.append(session.numpy("loss").tobytes())
        numerics.append(session.variable("w").array.tobytes())
        return numerics, cluster, comm

    def test_qp_break_mid_static_write(self):
        baseline, _, _ = self._train()
        numerics, cluster, comm = self._train(
            "qp_break:count=1,skip=2,role=static-write")
        assert numerics == baseline
        recovery = comm.recovery_snapshot()
        assert recovery["qp_reconnects"] >= 1
        assert recovery["gave_up"] == 0
        # The broken pair really was replaced, on some channel.
        devices = [d for d in cluster.services.values()
                   if isinstance(d, RdmaDevice)]
        reconnected = [ch for d in devices
                       for ch in d._channels.values() if ch.reconnects]
        assert reconnected
        assert all(not ch.broken for ch in reconnected)

    def test_payload_read_timeout_on_dynamic_path(self):
        baseline, _, _ = self._train(force_dynamic=True)
        numerics, cluster, comm = self._train(
            "blackhole:count=1,role=dynamic-payload-read",
            force_dynamic=True)
        assert numerics == baseline
        assert cluster.fault_plane.counts_by_kind() == {"blackhole": 1}
        recovery = comm.recovery_snapshot()
        # A blackholed READ produces no CQE: only the per-transfer
        # timeout can notice it.
        assert recovery["timeouts"] >= 1
        assert recovery["retries"] >= 1
        assert recovery["gave_up"] == 0

    def test_tcp_fallback_after_budget_exhaustion(self):
        from repro.core import RetryPolicy
        baseline, _, _ = self._train()
        policy = RetryPolicy(max_retries=2)
        numerics, cluster, comm = self._train(
            "drop:p=1.0,role=static-write", retry_policy=policy)
        assert numerics == baseline
        recovery = comm.recovery_snapshot()
        assert recovery["gave_up"] >= 1
        assert recovery["channels_degraded"] >= 1
        assert recovery["fallback_transfers"] >= 1

    def test_exhaustion_without_fallback_raises(self):
        from repro.core import RetryPolicy
        policy = RetryPolicy(max_retries=1, tcp_fallback=False)
        with pytest.raises(Exception, match="failed after 1 retries"):
            self._train("drop:p=1.0,role=static-write",
                        retry_policy=policy)


class TestAllocatorFailureEdges:
    def test_exhaustion_message_mentions_fragmentation(self):
        cluster = Cluster(1)
        arena = ArenaAllocator(cluster.hosts[0].allocate(1024, dense=True))
        a = arena.allocate_block(256)
        b = arena.allocate_block(256)
        arena.free_block(a)
        with pytest.raises(AllocatorError, match="fragmented"):
            arena.allocate_block(768)
