"""End-to-end transfer tests: session + executor + each mechanism.

These are the central integration tests of the reproduction: the same
two-device graph runs over gRPC.TCP, gRPC.RDMA, RDMA.cp, and RDMA
(zero-copy), delivering byte-exact tensors, and the RDMA mechanisms
exercise the static flag-byte protocol, the dynamic metadata protocol,
and the allocation-site tracer.
"""

import numpy as np
import pytest

from repro.core import RdmaCommRuntime
from repro.distributed.rpc_comm import GrpcCommRuntime
from repro.graph import DType, GraphBuilder, Session, Shape
from repro.simnet import Cluster


def make_comm(kind):
    if kind == "grpc_tcp":
        return GrpcCommRuntime(transport="tcp")
    if kind == "grpc_rdma":
        return GrpcCommRuntime(transport="rdma")
    if kind == "rdma_cp":
        return RdmaCommRuntime(zero_copy=False)
    if kind == "rdma":
        return RdmaCommRuntime(zero_copy=True)
    raise ValueError(kind)


ALL_MECHANISMS = ["grpc_tcp", "grpc_rdma", "rdma_cp", "rdma"]


def two_device_session(kind, cluster=None):
    """ps0 holds a weight; worker0 multiplies it with a fed input."""
    cluster = cluster or Cluster(2)
    b = GraphBuilder()
    w_init = np.arange(64, dtype=np.float32).reshape(8, 8)
    w = b.variable([8, 8], name="w", device="ps0", initializer=w_init)
    x = b.placeholder([8, 8], name="x", device="worker0")
    y = b.matmul(w, x, name="y", device="worker0")
    graph = b.finalize()
    session = Session(cluster, graph,
                      {"ps0": cluster.hosts[0], "worker0": cluster.hosts[1]},
                      comm=make_comm(kind))
    return cluster, session, w_init


class TestByteExactDelivery:
    @pytest.mark.parametrize("kind", ALL_MECHANISMS)
    def test_weight_arrives_exactly(self, kind):
        cluster, session, w_init = two_device_session(kind)
        x_val = np.eye(8, dtype=np.float32)
        session.run(feeds={"x": x_val})
        np.testing.assert_allclose(session.numpy("y"), w_init)

    @pytest.mark.parametrize("kind", ALL_MECHANISMS)
    def test_updates_visible_next_iteration(self, kind):
        """The weight changes on ps0 each iteration; workers must see
        fresh values (no stale flag/buffer reuse bugs)."""
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([4], name="w", device="ps0",
                       initializer=np.zeros(4, dtype=np.float32))
        g = b.constant(np.ones(4, dtype=np.float32), device="ps0")
        step = b.apply_gradient(w, g, lr=-1.0, name="step", device="ps0")
        out = b.identity(step, name="out", device="worker0")
        graph = b.finalize()
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=make_comm(kind))
        for expected in (1.0, 2.0, 3.0):
            session.run()
            np.testing.assert_allclose(session.numpy("out"),
                                       [expected] * 4)


class TestMechanismTimings:
    def _steady_time(self, kind, nbytes_side=512):
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([nbytes_side, nbytes_side], name="w", device="ps0",
                       initializer=np.zeros((nbytes_side, nbytes_side),
                                            dtype=np.float32))
        out = b.identity(w, name="out", device="worker0")
        graph = b.finalize()
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=make_comm(kind))
        stats = session.run(iterations=4)
        return stats.steady_state_time

    def test_ranking_matches_paper(self):
        """RDMA < RDMA.cp < gRPC.RDMA < gRPC.TCP (Figure 8 ordering)."""
        times = {kind: self._steady_time(kind) for kind in ALL_MECHANISMS}
        assert times["rdma"] < times["rdma_cp"]
        assert times["rdma_cp"] < times["grpc_rdma"]
        assert times["grpc_rdma"] < times["grpc_tcp"]

    def test_first_iteration_slower_for_rdma_tracing(self):
        """Iteration 0 stages (tracing not yet effective); later
        iterations are zero-copy and faster."""
        cluster = Cluster(2)
        b = GraphBuilder()
        x = b.placeholder([256, 256], name="x", device="worker0")
        y = b.square(x, name="y", device="worker0")
        sink = b.reduce_max(y, name="sink", device="ps0")
        graph = b.finalize()
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=make_comm("rdma"))
        feeds = {"x": np.ones((256, 256), dtype=np.float32)}
        stats = session.run(iterations=4, feeds=feeds)
        assert min(stats.iteration_times[1:]) < stats.iteration_times[0]


class TestTracer:
    def _traced_session(self):
        cluster = Cluster(2)
        b = GraphBuilder()
        x = b.placeholder([128, 128], name="x", device="worker0")
        y = b.square(x, name="y", device="worker0")
        sink = b.reduce_max(y, name="sink", device="ps0")
        graph = b.finalize()
        comm = RdmaCommRuntime(zero_copy=True)
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]}, comm=comm)
        return cluster, session, comm

    def test_hot_site_discovered_in_iteration_one(self):
        cluster, session, comm = self._traced_session()
        feeds = {"x": np.ones((128, 128), dtype=np.float32)}
        session.run(iterations=1, feeds=feeds)
        tracer = comm.tracers["worker0"]
        assert ("y", 0) in tracer.hot_sites

    def test_second_iteration_allocates_from_arena(self):
        cluster, session, comm = self._traced_session()
        feeds = {"x": np.ones((128, 128), dtype=np.float32)}
        session.run(iterations=2, feeds=feeds)
        executor = session.executor_for("worker0")
        y_tensor = executor.values[("y", 0)]
        assert y_tensor.buffer is executor.arena.backing

    def test_zero_copy_counters(self):
        cluster, session, comm = self._traced_session()
        feeds = {"x": np.ones((128, 128), dtype=np.float32)}
        session.run(iterations=3, feeds=feeds)
        # Iteration 0 staged; iterations 1-2 zero-copy.
        assert comm.state.staged_sends == 1
        assert comm.state.zero_copy_sends == 2

    def test_variable_send_zero_copy_from_start(self):
        """Variables feeding sends are arena-placed statically — no
        tracing round needed (§3.2)."""
        cluster, session, _ = (None, None, None)
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([64, 64], name="w", device="ps0",
                       initializer=np.zeros((64, 64), dtype=np.float32))
        out = b.identity(w, name="out", device="worker0")
        graph = b.finalize()
        comm = RdmaCommRuntime(zero_copy=True)
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]}, comm=comm)
        session.run(iterations=2)
        assert comm.state.staged_sends == 0
        assert comm.state.zero_copy_sends == 2
        ps_exec = session.executor_for("ps0")
        assert ps_exec.variables["w"].buffer is ps_exec.arena.backing

    def test_rdma_cp_never_zero_copies(self):
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([64, 64], name="w", device="ps0",
                       initializer=np.zeros((64, 64), dtype=np.float32))
        b.identity(w, name="out", device="worker0")
        graph = b.finalize()
        comm = RdmaCommRuntime(zero_copy=False)
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]}, comm=comm)
        session.run(iterations=3)
        assert comm.state.zero_copy_sends == 0
        assert comm.state.staged_sends == 3


class TestDynamicProtocol:
    def _dynamic_session(self, kind="rdma"):
        """Variable-length batch flowing across devices each iteration."""
        cluster = Cluster(2)
        b = GraphBuilder()
        x = b.placeholder([None, 16], name="x", device="worker0")
        y = b.identity(x, name="y", device="worker0")
        sink = b.identity(y, name="sink", device="ps0")
        graph = b.finalize()
        session = Session(cluster, graph,
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]},
                          comm=make_comm(kind))
        return cluster, session

    def test_dynamic_edge_claimed(self):
        cluster, session = self._dynamic_session()
        (edge,) = session.partitioned.transfers
        assert not edge.static_shape

    def test_varying_shapes_across_iterations(self):
        cluster, session = self._dynamic_session()
        for batch in (3, 11, 5):
            values = np.random.default_rng(batch).normal(
                size=(batch, 16)).astype(np.float32)
            session.run(feeds={"x": values})
            got = session.numpy("sink")
            assert got.shape == (batch, 16)
            np.testing.assert_allclose(got, values, rtol=1e-6)

    def test_dynamic_slower_than_static_per_transfer(self):
        """§3.3: dynamic allocation adds allocation + metadata overhead."""
        def run(static):
            cluster = Cluster(2)
            b = GraphBuilder()
            shape = [64, 16] if static else [None, 16]
            x = b.placeholder(shape, name="x", device="worker0")
            y = b.identity(x, name="y", device="worker0")
            b.identity(y, name="sink", device="ps0")
            graph = b.finalize()
            session = Session(cluster, graph,
                              {"ps0": cluster.hosts[0],
                               "worker0": cluster.hosts[1]},
                              comm=RdmaCommRuntime())
            feeds = {"x": np.zeros((64, 16), dtype=np.float32)}
            stats = session.run(iterations=5, feeds=feeds)
            return stats.steady_state_time
        assert run(static=False) > run(static=True)
