"""Regression: the retry-accounting dedupe for the timeout race.

A transfer whose completion lands *during the backoff window* — the
verb was merely slow, not lost — used to be double-counted: the retry
loop recorded a retry, re-issued the payload, and the chaos suite's
``retries == len(injected)`` identity only held because fixed schedules
never hit the window.  The fix checks ``event.ok`` after the backoff
sleep and records the race as a ``late_completion`` instead: no retry
counter, no duplicate bytes on the wire.

These tests pin the race deterministically by shrinking the attempt
timeout below one transfer's wire time while keeping
``timeout + backoff`` above it, so the original completion always
arrives mid-backoff.
"""

import pytest

from repro.core.device import Direction, RdmaDevice
from repro.core.recovery import RecoveryManager, RetryPolicy
from repro.simnet import Cluster, Endpoint

SIZE = 4 << 20  # ~341us of wire at the default cost model


def _rig(policy):
    cluster = Cluster(2)
    metrics = cluster.enable_metrics()
    a, b = cluster.hosts
    dev_a = RdmaDevice.create(a, 1, 1, Endpoint(a.name, 7950))
    dev_b = RdmaDevice.create(b, 1, 1, Endpoint(b.name, 7951))
    channel = dev_a.get_channel(dev_b.endpoint, 0)
    src = dev_a.allocate_mem_region(SIZE, dense=True)
    dst = dev_b.allocate_mem_region(SIZE, dense=True)
    src.write(b"\xab" * 256)
    recovery = RecoveryManager(cluster.sim, cluster.cost, policy=policy)
    return cluster, metrics, channel, src, dst, recovery


def _push(recovery, channel, src, dst):
    yield from recovery.reliable_memcpy(
        channel, local_addr=src.addr, local_region=src,
        remote_addr=dst.addr, remote_region=dst.descriptor(),
        size=SIZE, direction=Direction.LOCAL_TO_REMOTE, role="gradient-push")


def test_late_completion_is_not_a_retry():
    wire = Cluster(2).cost.rdma_write_time(SIZE)
    policy = RetryPolicy(
        # The timeout fires at 0.6x the wire time (a spurious timeout:
        # the verb is still in flight), and the backoff stretches past
        # the completion, which therefore lands mid-window.
        timeout_base=0.6 * wire, timeout_per_byte=0.0,
        backoff_base=wire, backoff_factor=1.0, backoff_max=wire)
    cluster, metrics, channel, src, dst, recovery = _rig(policy)
    cluster.sim.spawn(_push(recovery, channel, src, dst))
    cluster.sim.run()
    stats = recovery.stats
    assert stats.timeouts == 1
    assert stats.late_completions == 1
    # The dedupe: a late original is goodput, never retry traffic.
    assert stats.retries == 0
    assert stats.retries_by_role == {}
    assert stats.retransmits == 0
    assert stats.gave_up == 0
    # Exactly one transfer hit the wire — nothing was re-sent.
    assert metrics.count("RDMA_WRITE") == 1
    assert metrics.total_bytes() == SIZE
    assert dst.read(0, 256) == b"\xab" * 256


def test_fast_completion_records_nothing():
    cluster, metrics, channel, src, dst, recovery = _rig(RetryPolicy())
    cluster.sim.spawn(_push(recovery, channel, src, dst))
    cluster.sim.run()
    assert recovery.stats.to_dict() == RecoveryManager(
        cluster.sim, cluster.cost).stats.to_dict()
    assert metrics.count("RDMA_WRITE") == 1


def test_true_blackhole_still_retries():
    """The dedupe must not swallow real losses: a verb that never
    completes keeps retrying (checked via a timeout far below any
    completion the 30s-limit run could deliver)."""
    wire = Cluster(2).cost.rdma_write_time(SIZE)
    policy = RetryPolicy(
        timeout_base=0.6 * wire, timeout_per_byte=0.0,
        # Backoff shorter than the remaining wire time: the first retry
        # decision happens while the verb is STILL in flight, so the
        # re-issue path must run (event not ok yet).
        backoff_base=0.05 * wire, backoff_factor=1.0,
        backoff_max=0.05 * wire)
    cluster, metrics, channel, src, dst, recovery = _rig(policy)
    cluster.sim.spawn(_push(recovery, channel, src, dst))
    cluster.sim.run()
    stats = recovery.stats
    # First attempt timed out mid-flight and was legitimately retried;
    # later attempts (original + re-issue both land) may dedupe.
    assert stats.retries >= 1
    assert stats.retries_by_role.get("gradient-push", 0) >= 1
    assert metrics.count("RDMA_WRITE") >= 2
    assert dst.read(0, 256) == b"\xab" * 256
