"""Unit tests for the RDMA device library (Table 1 interface)."""

import pytest

from repro.core import (DeviceError, Direction, RdmaDevice,
                        attach_address_book)
from repro.simnet import Cluster, Endpoint


@pytest.fixture
def rig():
    cluster = Cluster(2)
    a, b = cluster.hosts
    dev_a = RdmaDevice.create(a, num_cqs=4, num_qps_per_peer=4,
                              local_endpoint=Endpoint(a.name, 7000))
    dev_b = RdmaDevice.create(b, num_cqs=4, num_qps_per_peer=4,
                              local_endpoint=Endpoint(b.name, 7000))
    return cluster, dev_a, dev_b


class TestDeviceCreation:
    def test_create_registers_service(self, rig):
        cluster, dev_a, dev_b = rig
        assert RdmaDevice.lookup(cluster.hosts[0],
                                 Endpoint(cluster.hosts[1].name, 7000)) is dev_b

    def test_duplicate_endpoint_rejected(self, rig):
        cluster, dev_a, _ = rig
        with pytest.raises(DeviceError):
            RdmaDevice.create(cluster.hosts[0], 1, 1,
                              Endpoint(cluster.hosts[0].name, 7000))

    def test_bad_configuration(self, rig):
        cluster, *_ = rig
        with pytest.raises(DeviceError):
            RdmaDevice.create(cluster.hosts[0], 0, 1,
                              Endpoint(cluster.hosts[0].name, 7050))

    def test_cq_count(self, rig):
        _, dev_a, _ = rig
        assert len(dev_a.cqs) == 4

    def test_two_devices_same_host_different_ports(self):
        cluster = Cluster(1)
        host = cluster.hosts[0]
        d1 = RdmaDevice.create(host, 1, 1, Endpoint(host.name, 7001))
        d2 = RdmaDevice.create(host, 1, 1, Endpoint(host.name, 7002))
        assert d1 is not d2


class TestMemRegions:
    def test_allocate_mem_region(self, rig):
        _, dev_a, _ = rig
        mem = dev_a.allocate_mem_region(4096)
        assert mem.size == 4096
        assert mem.rkey > 0

    def test_free_mem_region(self, rig):
        _, dev_a, _ = rig
        mem = dev_a.allocate_mem_region(4096)
        dev_a.free_mem_region(mem)
        assert mem not in dev_a.regions

    def test_descriptor(self, rig):
        _, dev_a, _ = rig
        mem = dev_a.allocate_mem_region(128)
        descriptor = mem.descriptor()
        assert descriptor.addr == mem.addr
        assert descriptor.rkey == mem.rkey
        assert descriptor.size == 128


class TestChannels:
    def test_get_channel_lazily_connects(self, rig):
        cluster, dev_a, dev_b = rig
        channel = dev_a.get_channel(dev_b.endpoint, qp_idx=0)
        assert channel.qp.remote is not None

    def test_channel_cached(self, rig):
        _, dev_a, dev_b = rig
        c1 = dev_a.get_channel(dev_b.endpoint, 1)
        c2 = dev_a.get_channel(dev_b.endpoint, 1)
        assert c1 is c2

    def test_distinct_qp_indices_distinct_qps(self, rig):
        _, dev_a, dev_b = rig
        c0 = dev_a.get_channel(dev_b.endpoint, 0)
        c1 = dev_a.get_channel(dev_b.endpoint, 1)
        assert c0.qp is not c1.qp

    def test_qp_idx_out_of_range(self, rig):
        _, dev_a, dev_b = rig
        with pytest.raises(DeviceError):
            dev_a.get_channel(dev_b.endpoint, 4)

    def test_qps_spread_over_cqs_round_robin(self, rig):
        _, dev_a, dev_b = rig
        cqs = [dev_a.get_channel(dev_b.endpoint, i).qp.send_cq
               for i in range(4)]
        assert len({cq.cq_id for cq in cqs}) > 1


class TestMemcpy:
    def test_write_moves_data(self, rig):
        cluster, dev_a, dev_b = rig
        src = dev_a.allocate_mem_region(64, dense=True)
        dst = dev_b.allocate_mem_region(64, dense=True)
        src.write(b"device-api-bytes")
        channel = dev_a.get_channel(dev_b.endpoint, 0)
        event = channel.memcpy_event(
            local_addr=src.addr, local_region=src,
            remote_addr=dst.addr, remote_region=dst.descriptor(),
            size=16, direction=Direction.LOCAL_TO_REMOTE)
        cluster.sim.run()
        assert event.triggered and event.ok
        assert dst.read(0, 16) == b"device-api-bytes"

    def test_read_pulls_data(self, rig):
        cluster, dev_a, dev_b = rig
        local = dev_a.allocate_mem_region(64, dense=True)
        remote = dev_b.allocate_mem_region(64, dense=True)
        remote.write(b"pull-me")
        channel = dev_a.get_channel(dev_b.endpoint, 2)
        channel.memcpy_event(
            local_addr=local.addr, local_region=local,
            remote_addr=remote.addr, remote_region=remote.descriptor(),
            size=7, direction=Direction.REMOTE_TO_LOCAL)
        cluster.sim.run()
        assert local.read(0, 7) == b"pull-me"

    def test_callback_fires_on_completion(self, rig):
        cluster, dev_a, dev_b = rig
        src = dev_a.allocate_mem_region(64, dense=True)
        dst = dev_b.allocate_mem_region(64, dense=True)
        channel = dev_a.get_channel(dev_b.endpoint, 0)
        fired = []
        channel.memcpy(local_addr=src.addr, local_region=src,
                       remote_addr=dst.addr, remote_region=dst.descriptor(),
                       size=64, direction=Direction.LOCAL_TO_REMOTE,
                       callback=lambda c: fired.append(c.ok))
        cluster.sim.run()
        assert fired == [True]

    def test_bad_remote_region_fails_event(self, rig):
        cluster, dev_a, dev_b = rig
        from repro.core import RemoteMemRegion
        src = dev_a.allocate_mem_region(64, dense=True)
        channel = dev_a.get_channel(dev_b.endpoint, 0)
        event = channel.memcpy_event(
            local_addr=src.addr, local_region=src,
            remote_addr=999, remote_region=RemoteMemRegion(999, 42, 64),
            size=64, direction=Direction.LOCAL_TO_REMOTE)
        cluster.sim.run()
        assert event.triggered
        with pytest.raises(DeviceError):
            _ = event.value

    def test_inline_write(self, rig):
        cluster, dev_a, dev_b = rig
        dst = dev_b.allocate_mem_region(64, dense=True)
        channel = dev_a.get_channel(dev_b.endpoint, 0)
        channel.memcpy_event(
            local_addr=0, local_region=None,
            remote_addr=dst.addr + 63, remote_region=dst.descriptor(),
            size=1, direction=Direction.LOCAL_TO_REMOTE,
            inline_data=b"\x01")
        cluster.sim.run()
        assert dst.read_byte(63) == 1

    def test_inline_read_rejected(self, rig):
        _, dev_a, dev_b = rig
        dst = dev_b.allocate_mem_region(64)
        channel = dev_a.get_channel(dev_b.endpoint, 0)
        with pytest.raises(DeviceError):
            channel.memcpy(local_addr=0, local_region=None,
                           remote_addr=dst.addr,
                           remote_region=dst.descriptor(), size=1,
                           direction=Direction.REMOTE_TO_LOCAL,
                           inline_data=b"x")

    def test_missing_local_region_rejected(self, rig):
        _, dev_a, dev_b = rig
        dst = dev_b.allocate_mem_region(64)
        channel = dev_a.get_channel(dev_b.endpoint, 0)
        with pytest.raises(DeviceError):
            channel.memcpy(local_addr=0, local_region=None,
                           remote_addr=dst.addr,
                           remote_region=dst.descriptor(), size=8,
                           direction=Direction.LOCAL_TO_REMOTE)


class TestAddressBook:
    def test_publish_and_remote_lookup(self, rig):
        cluster, dev_a, dev_b = rig
        book_a = attach_address_book(dev_a)
        book_b = attach_address_book(dev_b)
        mem = dev_b.allocate_mem_region(256)
        book_b.publish("weights/W0", mem)

        fetch = cluster.sim.spawn(book_a.lookup(dev_b.endpoint, "weights/W0"))
        descriptor = cluster.sim.run_until_complete(fetch, limit=5.0)
        assert descriptor.addr == mem.addr
        assert descriptor.rkey == mem.rkey
        assert descriptor.size == 256

    def test_lookup_retries_until_published(self, rig):
        cluster, dev_a, dev_b = rig
        book_a = attach_address_book(dev_a)
        book_b = attach_address_book(dev_b)
        mem = dev_b.allocate_mem_region(64)

        def publish_late():
            yield cluster.sim.timeout(0.001)
            book_b.publish("late-key", mem)

        cluster.sim.spawn(publish_late())
        fetch = cluster.sim.spawn(book_a.lookup(dev_b.endpoint, "late-key"))
        descriptor = cluster.sim.run_until_complete(fetch, limit=5.0)
        assert descriptor.addr == mem.addr

    def test_lookup_gives_up(self, rig):
        cluster, dev_a, dev_b = rig
        book_a = attach_address_book(dev_a)
        attach_address_book(dev_b)
        fetch = cluster.sim.spawn(
            book_a.lookup(dev_b.endpoint, "never", max_retries=3))
        cluster.sim.run()
        assert fetch.triggered
        with pytest.raises(DeviceError):
            _ = fetch.value

    def test_local_lookup(self, rig):
        _, dev_a, _ = rig
        book = attach_address_book(dev_a)
        mem = dev_a.allocate_mem_region(64)
        book.publish("k", mem)
        assert book.local_lookup("k").addr == mem.addr
        assert book.local_lookup("missing") is None
