"""Tests for the GPUDirect RDMA path (§3.5)."""

import pytest

from repro.core import DeviceError, RdmaCommRuntime
from repro.distributed import run_training_benchmark
from repro.graph import GraphBuilder, Session
from repro.models import get_model
from repro.simnet import Cluster

import numpy as np


class TestConfiguration:
    def test_gdr_requires_gpu(self):
        with pytest.raises(DeviceError, match="requires gpu"):
            RdmaCommRuntime(gpudirect=True)

    def test_gdr_forces_dynamic_protocol(self):
        comm = RdmaCommRuntime(gpu_tensors=True, gpudirect=True)
        assert comm.force_dynamic

    def test_names(self):
        assert RdmaCommRuntime(gpu_tensors=True,
                               gpudirect=True).name == "RDMA+GDR"
        assert RdmaCommRuntime(gpu_tensors=True).name == "RDMA"


class TestStagingCosts:
    def _run(self, comm):
        cluster = Cluster(2)
        b = GraphBuilder()
        w = b.variable([512, 512], name="w", device="ps0",
                       initializer=np.zeros((512, 512), dtype=np.float32))
        b.identity(w, name="out", device="worker0")
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]}, comm=comm)
        return session.run(iterations=4).steady_state_time

    def test_gpu_staging_slower_than_host(self):
        host = self._run(RdmaCommRuntime())
        gpu = self._run(RdmaCommRuntime(gpu_tensors=True))
        assert gpu > host

    def test_gdr_removes_staging(self):
        gpu = self._run(RdmaCommRuntime(gpu_tensors=True))
        gdr = self._run(RdmaCommRuntime(gpu_tensors=True, gpudirect=True))
        assert gdr < gpu

    def test_gdr_uses_dynamic_transfers(self):
        """With GDR, even statically shaped edges go dynamic (§3.5:
        the metadata stays in host memory so the CPU polls it, while
        payloads move by one-sided READ from GPU memory)."""
        cluster = Cluster(2)
        comm = RdmaCommRuntime(gpu_tensors=True, gpudirect=True)
        b = GraphBuilder()
        w = b.variable([64, 64], name="w", device="ps0",
                       initializer=np.zeros((64, 64), dtype=np.float32))
        b.identity(w, name="out", device="worker0")
        session = Session(cluster, b.finalize(),
                          {"ps0": cluster.hosts[0],
                           "worker0": cluster.hosts[1]}, comm=comm)
        session.run(iterations=2)
        from repro.core.transfer import DynamicReceiver
        (receiver,) = comm.receivers.values()
        assert isinstance(receiver, DynamicReceiver)
        assert receiver.receives == 2


class TestTable3Shape:
    def test_comm_bound_model_gains_from_gdr(self):
        spec = get_model("FCN-5")
        gpu = run_training_benchmark(spec, "RDMA.gpu", num_servers=4,
                                     batch_size=16, iterations=3)
        gdr = run_training_benchmark(spec, "RDMA+GDR", num_servers=4,
                                     batch_size=16, iterations=3)
        assert not gpu.crashed and not gdr.crashed
        assert gdr.step_time < gpu.step_time
