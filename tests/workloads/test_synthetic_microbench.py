"""Unit tests for workload generators and the micro-benchmark."""

import itertools

import numpy as np
import pytest

from repro.workloads import (random_batch, random_tensor, run_microbench,
                             sweep_microbench, synthetic_minibatches,
                             variable_length_batches)
from repro.workloads.microbench import MICRO_MECHANISMS


MB = 1024 * 1024


class TestSyntheticData:
    def test_random_tensor_deterministic(self):
        a = random_tensor([4, 4], seed=1)
        b = random_tensor([4, 4], seed=1)
        assert np.array_equal(a, b)
        assert a.dtype == np.float32

    def test_random_batch_one_hot(self):
        x, y = random_batch(16, 8, 4, seed=0)
        assert x.shape == (16, 8)
        assert y.shape == (16, 4)
        assert np.array_equal(y.sum(axis=1), np.ones(16))

    def test_minibatch_stream_varies(self):
        stream = synthetic_minibatches(4, 8, 2, seed=0)
        (x1, _), (x2, _) = next(stream), next(stream)
        assert not np.array_equal(x1, x2)

    def test_variable_length_batches(self):
        batches = variable_length_batches(max_length=10, feature_dim=3,
                                          count=20, seed=0)
        lengths = {b.shape[0] for b in batches}
        assert all(1 <= n <= 10 for n in lengths)
        assert len(lengths) > 1  # shapes actually vary
        assert all(b.shape[1] == 3 for b in batches)


class TestMicrobench:
    def test_single_point(self):
        result = run_microbench("RDMA", 1 * MB, iterations=3)
        assert result.transfer_seconds > 0
        assert result.throughput_gbps > 10

    def test_throughput_none_when_crashed(self):
        result = run_microbench("gRPC.RDMA", 2 * 1024 * MB, iterations=2)
        assert result.transfer_seconds is None
        assert result.throughput_gbps is None
        assert result.crash_reason

    def test_sweep_structure(self):
        sizes = (256 * 1024, 1 * MB)
        sweep = sweep_microbench(sizes, mechanisms=("RDMA", "gRPC.TCP"),
                                 iterations=2)
        assert set(sweep) == {"RDMA", "gRPC.TCP"}
        for points in sweep.values():
            assert [p.message_bytes for p in points] == list(sizes)

    def test_mechanism_ordering_at_1mb(self):
        times = {m: run_microbench(m, 1 * MB, iterations=3).transfer_seconds
                 for m in MICRO_MECHANISMS}
        assert (times["RDMA"] < times["RDMA.cp"]
                < times["gRPC.RDMA"] < times["gRPC.TCP"])

    def test_time_scales_with_size(self):
        small = run_microbench("RDMA", 1 * MB, iterations=3)
        large = run_microbench("RDMA", 64 * MB, iterations=3)
        assert large.transfer_seconds > 10 * small.transfer_seconds
