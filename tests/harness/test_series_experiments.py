"""Unit tests for the experiment result container and fast experiments."""

import pytest

from repro.harness import ExperimentResult, figure7, figure8, table2
from repro.harness.experiments import ALL_EXPERIMENTS, KB, MB


class TestExperimentResult:
    def _sample(self):
        result = ExperimentResult(experiment="Figure X", title="demo",
                                  columns=["a", "b"])
        result.add_row("x", 1.5)
        result.add_row("y", 2.5)
        return result

    def test_add_row_validates_width(self):
        result = self._sample()
        with pytest.raises(ValueError):
            result.add_row("too", "many", "values")

    def test_column(self):
        assert self._sample().column("b") == [1.5, 2.5]

    def test_find_and_cell(self):
        result = self._sample()
        assert result.find(a="x") == [["x", 1.5]]
        assert result.cell("b", a="y") == 2.5

    def test_cell_requires_unique_match(self):
        result = self._sample()
        result.add_row("x", 9.0)
        with pytest.raises(KeyError):
            result.cell("b", a="x")

    def test_render_contains_everything(self):
        result = self._sample()
        result.note("a caveat")
        text = result.render()
        assert "Figure X" in text and "demo" in text
        assert "1.50" in text and "a caveat" in text

    def test_render_formats_none_as_dash(self):
        result = ExperimentResult(experiment="E", title="t", columns=["v"])
        result.add_row(None)
        assert "-" in result.render().splitlines()[-1]

    def test_csv(self):
        csv_text = self._sample().to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert "x,1.5" in csv_text

    def test_registry_covers_all_tables_and_figures(self):
        assert set(ALL_EXPERIMENTS) == {
            "table2", "figure7", "figure8", "figure9", "figure10",
            "figure11", "figure12", "table3", "allreduce", "stallreport",
            "overlap", "chaos", "serving", "scale", "netreduce",
            "telemetry", "lossy", "llmtrain", "llmserve"}


class TestFastExperiments:
    def test_table2_rows(self):
        result = table2()
        assert len(result.rows) == 6
        assert result.cell("variable_tensors", benchmark="Inception-v3") == 196

    def test_figure7_ccdf_monotone(self):
        result = figure7()
        fractions = result.column("fraction_of_tensors_larger")
        assert fractions == sorted(fractions, reverse=True)

    def test_figure8_small_sweep(self):
        result = figure8(sizes=(64 * KB, 1 * MB), iterations=2)
        assert len(result.rows) == 4 * 2  # 4 mechanisms x 2 sizes
        rdma = result.cell("transfer_ms", mechanism="RDMA",
                           message_bytes=1 * MB)
        tcp = result.cell("transfer_ms", mechanism="gRPC.TCP",
                          message_bytes=1 * MB)
        assert rdma < tcp

    def test_overlap_single_model(self, tmp_path):
        import json

        from repro.harness.experiments import overlap

        json_path = tmp_path / "bench.json"
        result = overlap(models=("FCN-5",), num_servers=2,
                         json_path=str(json_path))
        assert len(result.rows) == 1
        assert result.cell("faster", benchmark="FCN-5") is True
        barrier = result.cell("barrier_ms", benchmark="FCN-5")
        eager = result.cell("eager_priority_ms", benchmark="FCN-5")
        assert eager < barrier
        payload = json.loads(json_path.read_text())
        assert payload["model_count"] == 1
        assert payload["models"][0]["faster"] is True
        assert payload["models"][0]["eager_overlap_efficiency"] > \
            payload["models"][0]["barrier_overlap_efficiency"]

    def test_serving_experiment(self, tmp_path):
        import json

        from repro.harness.experiments import serving

        json_path = tmp_path / "bench.json"
        result = serving(requests=200, json_path=str(json_path))
        assert len(result.rows) == 4
        payload = json.loads(json_path.read_text())
        assert payload["batching_wins"] is True
        assert payload["priority_wins"] is True
        assert payload["torn_serves_total"] == 0
        assert len(payload["runs"]) == 4
        fifo = next(r for r in payload["runs"] if r["run"] == "fifo+training")
        prio = next(r for r in payload["runs"]
                    if r["run"] == "priority+training")
        assert prio["latency"]["p99"] < fifo["latency"]["p99"]
