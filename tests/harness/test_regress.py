"""Perf-regression gate: verdict math, probes vs fabricated baselines,
the trajectory record, and the CLI contract (exit nonzero on regression).
"""

import json

import pytest

from repro.harness import regress
from repro.harness.regress import (Check, GateReport, append_trajectory,
                                   main, probe_netreduce, probe_overlap)


class TestCheckEvaluate:
    def _check(self, baseline, fresh, direction, tolerance=0.05):
        return Check("p", "m", baseline, fresh, direction, tolerance)

    def test_lower_better(self):
        assert self._check(100.0, 102.0, "lower_better").evaluate() == "ok"
        assert self._check(100.0, 110.0,
                           "lower_better").evaluate() == "regressed"
        assert self._check(100.0, 90.0,
                           "lower_better").evaluate() == "improved"

    def test_higher_better(self):
        assert self._check(100.0, 98.0, "higher_better").evaluate() == "ok"
        assert self._check(100.0, 90.0,
                           "higher_better").evaluate() == "regressed"
        assert self._check(100.0, 110.0,
                           "higher_better").evaluate() == "improved"

    def test_match_gates_both_directions(self):
        assert self._check(100.0, 104.0, "match").evaluate() == "ok"
        assert self._check(100.0, 110.0, "match").evaluate() == "regressed"
        assert self._check(100.0, 90.0, "match").evaluate() == "regressed"

    def test_zero_baseline_does_not_divide_by_zero(self):
        assert self._check(0.0, 0.0, "match").evaluate() == "ok"

    def test_unknown_direction_raises(self):
        with pytest.raises(ValueError):
            self._check(1.0, 1.0, "sideways").evaluate()


class TestGateReport:
    def test_ok_requires_no_regressions_and_no_errors(self):
        report = GateReport()
        assert report.ok
        report.add(Check("p", "m", 100.0, 100.0, "match", 0.05))
        assert report.ok
        report.errors.append("probe broke")
        assert not report.ok

    def test_regression_flips_ok(self):
        report = GateReport()
        report.add(Check("p", "m", 100.0, 150.0, "lower_better", 0.05))
        assert report.regressions and not report.ok
        out = report.to_dict()
        assert out["ok"] is False
        assert out["regressions"] == 1


class TestArgValidation:
    def test_unknown_probe_rejected(self):
        with pytest.raises(SystemExit):
            main(["--probes", "warp-core"])

    def test_tolerance_range(self):
        with pytest.raises(SystemExit):
            main(["--tolerance", "0"])
        with pytest.raises(SystemExit):
            main(["--tolerance", "1.5"])


def _fresh_overlap_rows(models=("FCN-5",)):
    """Run the overlap probe workloads once and return baseline rows."""
    from repro.distributed.runner import run_training_benchmark
    from repro.models.zoo import get_model
    from repro.simnet.costmodel import MB

    config = {"num_servers": 2, "batch_size": 32, "iterations": 2,
              "algorithm": "ring", "fusion_mb": 8}
    rows = []
    for name in models:
        common = dict(num_servers=2, batch_size=32, iterations=2,
                      strategy="ring", fusion_bytes=8 * MB)
        barrier = run_training_benchmark(get_model(name), "RDMA",
                                         eager_flush=False,
                                         priority_sched=False, **common)
        eager = run_training_benchmark(get_model(name), "RDMA",
                                       eager_flush=True,
                                       priority_sched=True, **common)
        rows.append({"benchmark": name,
                     "barrier_step_ms": barrier.step_time * 1e3,
                     "eager_priority_step_ms": eager.step_time * 1e3,
                     "faster": eager.step_time < barrier.step_time})
    return {"config": config, "models": rows}


@pytest.fixture(scope="module")
def overlap_baseline():
    return _fresh_overlap_rows()


class TestOverlapProbeEndToEnd:
    def test_matching_baseline_passes(self, overlap_baseline, tmp_path):
        (tmp_path / "BENCH_overlap.json").write_text(
            json.dumps(overlap_baseline))
        report = GateReport()
        probe_overlap(report, str(tmp_path), tolerance=0.05,
                      models=("FCN-5",))
        assert report.errors == []
        assert len(report.checks) == 2
        # determinism: the rerun reproduces the baseline exactly
        assert all(c.verdict == "ok" and c.fresh == c.baseline
                   for c in report.checks)
        assert report.ok

    def test_perturbed_baseline_regresses(self, overlap_baseline, tmp_path):
        doctored = json.loads(json.dumps(overlap_baseline))
        # pretend the committed run was 20% faster than today's code
        doctored["models"][0]["barrier_step_ms"] *= 0.8
        (tmp_path / "BENCH_overlap.json").write_text(json.dumps(doctored))
        report = GateReport()
        probe_overlap(report, str(tmp_path), tolerance=0.05,
                      models=("FCN-5",))
        assert [c.metric for c in report.regressions] \
            == ["FCN-5.barrier_step_ms"]
        assert not report.ok

    def test_lost_speedup_is_an_error(self, overlap_baseline, tmp_path):
        doctored = json.loads(json.dumps(overlap_baseline))
        row = doctored["models"][0]
        # the committed row promises eager < barrier with step times the
        # rerun reproduces; invert the fresh comparison by swapping the
        # baseline columns and widening tolerance so only the flag trips
        row["barrier_step_ms"], row["eager_priority_step_ms"] = \
            row["eager_priority_step_ms"], row["barrier_step_ms"]
        (tmp_path / "BENCH_overlap.json").write_text(json.dumps(doctored))
        report = GateReport()
        probe_overlap(report, str(tmp_path), tolerance=0.99,
                      models=("FCN-5",))
        assert report.errors == []  # tolerance hides the swap...
        assert report.ok            # ...and the faster flag still holds

    def test_missing_baseline_is_an_error(self, tmp_path):
        report = GateReport()
        probe_overlap(report, str(tmp_path), tolerance=0.05)
        assert report.errors == ["overlap: no BENCH_overlap.json baseline"]
        assert not report.ok

    def test_unknown_model_is_an_error(self, overlap_baseline, tmp_path):
        (tmp_path / "BENCH_overlap.json").write_text(
            json.dumps(overlap_baseline))
        report = GateReport()
        probe_overlap(report, str(tmp_path), tolerance=0.05,
                      models=("NotAModel",))
        assert report.errors \
            == ["overlap: model 'NotAModel' not in baseline"]


def _fresh_netreduce_baseline(model="GRU", workers=8, hosts_per_rack=4):
    """Run the netreduce probe workloads once and return a baseline."""
    from repro.distributed.runner import run_training_benchmark
    from repro.models.zoo import get_model
    from repro.simnet.costmodel import MB

    config = {"models": [model], "worker_counts": [workers],
              "hosts_per_rack": hosts_per_rack, "oversubscription": 4.0,
              "batch_size": 8, "iterations": 2, "fusion_mb": 8,
              "max_flat_ring_workers": 0}
    entry = {"model": model, "workers": workers,
             "racks": workers // hosts_per_rack}
    common = dict(num_servers=workers, batch_size=8, iterations=2,
                  fusion_bytes=8 * MB, topology="fat-tree",
                  hosts_per_rack=hosts_per_rack, oversubscription=4.0,
                  collect_metrics=True)
    for strategy in ("hierarchical", "innetwork"):
        bench = run_training_benchmark(get_model(model), "RDMA",
                                       strategy=strategy, **common)
        entry[strategy] = {
            "step_ms": bench.step_time * 1e3,
            "wire_mb_per_worker": bench.wire_bytes_per_worker() / MB,
        }
    entry["innetwork_speedup_vs_hierarchical"] = \
        (entry["hierarchical"]["step_ms"] / entry["innetwork"]["step_ms"])
    return {"config": config, "sweep": [entry]}


@pytest.fixture(scope="module")
def netreduce_baseline():
    return _fresh_netreduce_baseline()


class TestNetreduceProbeEndToEnd:
    def test_matching_baseline_passes(self, netreduce_baseline, tmp_path):
        (tmp_path / "BENCH_netreduce.json").write_text(
            json.dumps(netreduce_baseline))
        report = GateReport()
        probe_netreduce(report, str(tmp_path), tolerance=0.05, workers=8)
        assert report.errors == []
        assert len(report.checks) == 3
        # determinism: the rerun reproduces the baseline exactly
        assert all(c.verdict == "ok" and c.fresh == c.baseline
                   for c in report.checks)
        assert report.ok

    def test_perturbed_step_time_regresses(self, netreduce_baseline,
                                           tmp_path):
        doctored = json.loads(json.dumps(netreduce_baseline))
        # pretend the committed in-network run was 20% faster
        doctored["sweep"][0]["innetwork"]["step_ms"] *= 0.8
        (tmp_path / "BENCH_netreduce.json").write_text(
            json.dumps(doctored))
        report = GateReport()
        probe_netreduce(report, str(tmp_path), tolerance=0.05, workers=8)
        assert [c.metric for c in report.regressions] \
            == ["GRU.n8.innetwork_step_ms"]
        assert not report.ok

    def test_wire_drift_regresses_both_directions(self, netreduce_baseline,
                                                  tmp_path):
        # Fewer wire bytes is not an improvement here: the identity is
        # exact, so any drift means the collective changed shape.
        doctored = json.loads(json.dumps(netreduce_baseline))
        doctored["sweep"][0]["innetwork"]["wire_mb_per_worker"] *= 1.2
        (tmp_path / "BENCH_netreduce.json").write_text(
            json.dumps(doctored))
        report = GateReport()
        probe_netreduce(report, str(tmp_path), tolerance=0.05, workers=8)
        assert [c.metric for c in report.regressions] \
            == ["GRU.n8.innetwork_wire_mb"]

    def test_speedup_flag_judges_fresh_runs(self, netreduce_baseline,
                                            tmp_path):
        # The "in-network is faster" bit compares the *fresh* runs, so
        # doctored baseline step times can't fake a lost speedup: with
        # tolerance wide enough to hide the doctoring, the gate still
        # passes because today's code really is faster.
        doctored = json.loads(json.dumps(netreduce_baseline))
        doctored["sweep"][0]["innetwork"]["step_ms"] *= 0.6
        (tmp_path / "BENCH_netreduce.json").write_text(
            json.dumps(doctored))
        report = GateReport()
        probe_netreduce(report, str(tmp_path), tolerance=0.99, workers=8)
        assert report.errors == []
        assert report.ok

    def test_missing_baseline_is_an_error(self, tmp_path):
        report = GateReport()
        probe_netreduce(report, str(tmp_path), tolerance=0.05)
        assert report.errors \
            == ["netreduce: no BENCH_netreduce.json baseline"]

    def test_missing_worker_count_is_an_error(self, netreduce_baseline,
                                              tmp_path):
        (tmp_path / "BENCH_netreduce.json").write_text(
            json.dumps(netreduce_baseline))
        report = GateReport()
        probe_netreduce(report, str(tmp_path), tolerance=0.05, workers=256)
        assert report.errors \
            == ["netreduce: no innetwork baseline at n=256"]


class TestMainExitCodes:
    def test_pass_and_fail_exit_codes(self, overlap_baseline, tmp_path,
                                      monkeypatch, capsys):
        monkeypatch.setitem(
            regress._PROBE_FNS, "overlap",
            lambda report, d, tol: probe_overlap(report, d, tol,
                                                 models=("FCN-5",)))
        (tmp_path / "BENCH_overlap.json").write_text(
            json.dumps(overlap_baseline))
        gate_json = tmp_path / "gate.json"
        code = main(["--probes", "overlap",
                     "--baseline-dir", str(tmp_path),
                     "--json", str(gate_json)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        dumped = json.loads(gate_json.read_text())
        assert dumped["ok"] is True and dumped["regressions"] == 0

        doctored = json.loads(json.dumps(overlap_baseline))
        doctored["models"][0]["eager_priority_step_ms"] *= 0.5
        (tmp_path / "BENCH_overlap.json").write_text(json.dumps(doctored))
        code = main(["--probes", "overlap",
                     "--baseline-dir", str(tmp_path)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out


class TestTrajectory:
    def _report(self):
        report = GateReport()
        report.add(Check("scale", "n64.step_ms", 10.0, 10.0,
                         "lower_better", 0.05))
        return report

    def test_appends_and_preserves_payload(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        path.write_text(json.dumps({"experiment": "telemetry",
                                    "runs": [{"run": "clean"}]}))
        append_trajectory(self._report(), str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "telemetry"  # untouched
        assert payload["runs"] == [{"run": "clean"}]
        (entry,) = payload["trajectory"]
        assert entry["ok"] is True
        assert entry["metrics"] == {"scale.n64.step_ms": 10.0}

    def test_creates_file_when_absent(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        append_trajectory(self._report(), str(path))
        assert len(json.loads(path.read_text())["trajectory"]) == 1

    def test_trims_to_keep_limit(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        for _ in range(regress.TRAJECTORY_KEEP + 5):
            append_trajectory(self._report(), str(path))
        payload = json.loads(path.read_text())
        assert len(payload["trajectory"]) == regress.TRAJECTORY_KEEP
