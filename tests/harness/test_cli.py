"""Tests for the command-line entry point."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "AlexNet" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table2", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Figure 7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestCommFlags:
    def teardown_method(self):
        from repro.distributed import reset_comm_config
        reset_comm_config()

    def test_flags_configure_comm(self, capsys):
        from repro.distributed import comm_config
        assert main(["--num-cqs", "2", "--qps-per-peer", "8",
                     "--backend", "gRPC.TCP", "table2"]) == 0
        config = comm_config()
        assert config.num_cqs == 2
        assert config.num_qps_per_peer == 8
        assert config.backend == "gRPC.TCP"

    def test_defaults_untouched_without_flags(self, capsys):
        from repro.distributed import CommConfig, comm_config
        assert main(["table2"]) == 0
        assert comm_config() == CommConfig()

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["--backend", "carrier-pigeon", "table2"])

    def test_invalid_cq_count_rejected(self):
        with pytest.raises(ValueError):
            main(["--num-cqs", "0", "table2"])

    def test_scheduler_flags_configure_comm(self, capsys):
        from repro.distributed import comm_config
        assert main(["--fusion-mb", "4", "--priority-sched",
                     "--no-eager-flush", "table2"]) == 0
        config = comm_config()
        assert config.fusion_bytes == 4 * 1024 * 1024
        assert config.priority_sched is True
        assert config.eager_flush is False

    def test_fractional_fusion_mb(self, capsys):
        from repro.distributed import comm_config
        assert main(["--fusion-mb", "0.5", "table2"]) == 0
        assert comm_config().fusion_bytes == 512 * 1024

    def test_eager_flush_default_untouched(self, capsys):
        from repro.distributed import comm_config
        assert main(["table2"]) == 0
        # no flag given: the config keeps its defaults
        assert comm_config().eager_flush is True
        assert comm_config().priority_sched is False
        assert comm_config().fusion_bytes is None

    def test_invalid_fusion_mb_rejected(self):
        with pytest.raises(ValueError):
            main(["--fusion-mb", "0", "table2"])


class TestPipelineFlags:
    def teardown_method(self):
        from repro.distributed import reset_comm_config
        reset_comm_config()

    def test_flags_configure_comm(self, capsys):
        from repro.distributed import comm_config
        assert main(["--pipeline-stages", "8", "--microbatches", "2",
                     "--schedule", "gpipe", "table2"]) == 0
        config = comm_config()
        assert config.pipeline_stages == 8
        assert config.microbatches == 2
        assert config.schedule == "gpipe"

    def test_defaults_stay_unpinned(self, capsys):
        from repro.distributed import comm_config
        assert main(["table2"]) == 0
        assert comm_config().pipeline_stages is None
        assert comm_config().microbatches is None
        assert comm_config().schedule is None

    def test_invalid_stage_count_rejected(self):
        with pytest.raises(ValueError, match="pipeline_stages"):
            main(["--pipeline-stages", "0", "table2"])

    def test_invalid_microbatches_rejected(self):
        with pytest.raises(ValueError, match="microbatches"):
            main(["--microbatches", "0", "table2"])

    def test_unknown_schedule_rejected(self):
        with pytest.raises(SystemExit):
            main(["--schedule", "zero-bubble", "table2"])

    def test_pinned_flags_narrow_llmtrain(self, capsys):
        from repro.distributed import configure_comm
        from repro.harness.experiments import llmtrain
        configure_comm(pipeline_stages=2, microbatches=2,
                       schedule="1f1b")
        result = llmtrain(model="TF-Tiny", batch_size=4, iterations=2)
        assert result.column("stages") == [2]
        assert result.column("schedule") == ["1f1b"]
        # single-schedule run: no gpipe cell, so no headline note
        assert not any("every stage count" in n for n in result.notes)

    def test_pinned_microbatches_reach_runner(self, capsys):
        from repro.distributed import configure_comm
        from repro.distributed.runner import run_training_benchmark
        from repro.models import get_model
        configure_comm(microbatches=2, schedule="gpipe")
        bench = run_training_benchmark(
            get_model("TF-Tiny"), "RDMA", num_servers=2, batch_size=4,
            iterations=2, strategy="llm")
        assert bench.pipeline.microbatches == 2
        assert bench.pipeline.schedule == "gpipe"


class TestLlmServingFlags:
    def teardown_method(self):
        from repro.serving import reset_serving_config
        from repro.distributed import reset_comm_config
        reset_serving_config()
        reset_comm_config()

    def test_flags_configure_serving(self, capsys):
        from repro.serving import serving_config
        assert main(["--kv-budget-mb", "256", "--max-width", "32",
                     "table2"]) == 0
        config = serving_config()
        assert config.kv_budget_mb == 256.0
        assert config.max_width == 32


class TestCaptureFlags:
    def teardown_method(self):
        from repro.observability import reset_capture
        reset_capture()

    def test_trace_and_metrics_written(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "run.metrics.json"
        assert main(["stallreport", "--trace-out", str(trace_path),
                     "--metrics-json", str(metrics_path)]) == 0
        err = capsys.readouterr().err
        assert "trace written to" in err and "metrics written to" in err

        trace = json.loads(trace_path.read_text())
        assert len(trace["traceEvents"]) > 0
        categories = {e.get("cat") for e in trace["traceEvents"]
                      if e.get("ph") == "X"}
        assert {"op", "cq_poll", "verb", "collective"} <= categories

        metrics = json.loads(metrics_path.read_text())
        assert len(metrics["runs"]) == 1
        run = metrics["runs"][0]
        assert run["metrics"]["counters"]["arena_bytes_registered"] > 0
        assert run["stall"]["iterations"][0]["coverage"] == \
            pytest.approx(1.0, abs=0.01)

    def test_capture_state_cleared_after_run(self, capsys, tmp_path):
        from repro.observability import capture_enabled
        assert main(["table2", "--metrics-json",
                     str(tmp_path / "m.json")]) == 0
        assert not capture_enabled()


class TestTelemetryFlags:
    def teardown_method(self):
        from repro.distributed import reset_comm_config
        from repro.observability import reset_capture
        reset_comm_config()
        reset_capture()

    def test_budget_flags_need_a_capture_sink(self):
        with pytest.raises(SystemExit):
            main(["--trace-sample", "0.1", "table2"])
        with pytest.raises(SystemExit):
            main(["--trace-hosts", "2", "table2"])

    def test_event_cap_needs_trace_out(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--trace-event-cap", "100", "--metrics-json",
                  str(tmp_path / "m.json"), "table2"])

    def test_sample_rate_range_enforced(self, tmp_path):
        sink = ["--telemetry-out", str(tmp_path / "t.json")]
        with pytest.raises(SystemExit):
            main(["--trace-sample", "0", *sink, "table2"])
        with pytest.raises(SystemExit):
            main(["--trace-sample", "1.5", *sink, "table2"])

    def test_event_cap_must_be_positive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--trace-event-cap", "0", "--trace-out",
                  str(tmp_path / "t.json"), "table2"])

    def test_malformed_trace_hosts_rejected_early(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["--trace-hosts", "a,,b", "--telemetry-out",
                  str(tmp_path / "t.json"), "table2"])
        assert "--trace-hosts" in capsys.readouterr().err

    def test_budget_flags_configure_comm(self, capsys, tmp_path):
        from repro.distributed import comm_config
        assert main(["stallreport", "--telemetry-out",
                     str(tmp_path / "t.json"), "--trace-sample", "0.5",
                     "--trace-hosts", "server0"]) == 0
        config = comm_config()
        assert config.trace_sample == 0.5
        assert config.trace_hosts == "server0"

    def test_telemetry_out_written(self, capsys, tmp_path):
        import json

        telemetry_path = tmp_path / "telemetry.json"
        assert main(["stallreport", "--telemetry-out",
                     str(telemetry_path), "--trace-sample", "0.1"]) == 0
        assert "telemetry written to" in capsys.readouterr().err
        payload = json.loads(telemetry_path.read_text())
        run = payload["runs"][0]
        assert run["spans_dropped"] > 0
        assert run["telemetry"]["rollups"]
        assert payload["incident_total"] == 0  # healthy run, no incidents


class TestCollectiveFlags:
    def teardown_method(self):
        from repro.distributed import reset_comm_config
        reset_comm_config()

    def test_innetwork_requires_fat_tree(self, capsys):
        with pytest.raises(SystemExit):
            main(["--collective", "innetwork", "table2"])
        err = capsys.readouterr().err
        assert "--collective innetwork" in err
        assert "fat-tree" in err

    def test_innetwork_with_flat_topology_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--collective", "innetwork", "--topology", "flat",
                  "table2"])
        assert "fat-tree" in capsys.readouterr().err

    def test_innetwork_on_fat_tree_accepted(self, capsys):
        from repro.distributed import comm_config
        assert main(["--collective", "innetwork", "--topology", "fat-tree",
                     "--hosts-per-rack", "4", "table2"]) == 0
        config = comm_config()
        assert config.collective == "innetwork"
        assert config.topology == "fat-tree"
        assert config.hosts_per_rack == 4

    def test_configured_innetwork_default_still_checked(self, capsys):
        # The cross-check consults the configured default, not just the
        # flag: a session-level innetwork collective on a flat topology
        # is the same mistake.
        from repro.distributed import configure_comm
        configure_comm(collective="innetwork")
        with pytest.raises(SystemExit):
            main(["table2"])
        assert "fat-tree" in capsys.readouterr().err

    def test_other_collectives_unaffected(self, capsys):
        assert main(["--collective", "hierarchical", "table2"]) == 0


class TestServingFlags:
    def teardown_method(self):
        from repro.serving import reset_serving_config
        reset_serving_config()

    def test_flags_configure_serving(self, capsys):
        from repro.serving import serving_config
        assert main(["--replicas", "3", "--qps", "900", "--max-batch", "4",
                     "--batch-timeout", "0.001", "--slo-ms", "30",
                     "table2"]) == 0
        config = serving_config()
        assert config.replicas == 3
        assert config.qps == 900.0
        assert config.max_batch == 4
        assert config.batch_timeout == 0.001
        assert config.slo_ms == 30.0

    def test_defaults_untouched_without_flags(self, capsys):
        from repro.serving import ServingConfig, serving_config
        assert main(["table2"]) == 0
        assert serving_config() == ServingConfig()

    def test_invalid_replica_count_rejected(self):
        with pytest.raises(ValueError):
            main(["--replicas", "0", "table2"])

    def test_unknown_experiment_lists_known_names(self, capsys):
        with pytest.raises(SystemExit):
            main(["bogus"])
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "serving" in err and "table2" in err
