"""Tests for the command-line entry point."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "AlexNet" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table2", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Figure 7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestCommFlags:
    def teardown_method(self):
        from repro.distributed import reset_comm_config
        reset_comm_config()

    def test_flags_configure_comm(self, capsys):
        from repro.distributed import comm_config
        assert main(["--num-cqs", "2", "--qps-per-peer", "8",
                     "--backend", "gRPC.TCP", "table2"]) == 0
        config = comm_config()
        assert config.num_cqs == 2
        assert config.num_qps_per_peer == 8
        assert config.backend == "gRPC.TCP"

    def test_defaults_untouched_without_flags(self, capsys):
        from repro.distributed import CommConfig, comm_config
        assert main(["table2"]) == 0
        assert comm_config() == CommConfig()

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["--backend", "carrier-pigeon", "table2"])

    def test_invalid_cq_count_rejected(self):
        with pytest.raises(ValueError):
            main(["--num-cqs", "0", "table2"])
