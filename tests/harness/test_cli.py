"""Tests for the command-line entry point."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "AlexNet" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table2", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Figure 7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
