"""Tests for the allreduce training graph and the strategy runner path."""

import pytest

from repro.distributed import (ALLREDUCE_ALGORITHMS, STRATEGIES, CommConfig,
                               build_allreduce_training_graph, comm_config,
                               configure_comm, make_mechanism,
                               reset_comm_config, run_training_benchmark)
from repro.graph.partition import partition
from repro.models import get_model


@pytest.fixture(scope="module")
def fcn5():
    return get_model("FCN-5")


class TestGraphConstruction:
    def test_devices_are_workers_only(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=4,
                                             batch_size=8)
        assert job.devices == [f"worker{i}" for i in range(4)]
        assert not any(d.startswith("ps") for d in job.devices)

    def test_buckets_cover_model(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=2,
                                             batch_size=8)
        assert sum(b.nbytes for b in job.buckets) == fcn5.model_bytes

    def test_fusion_spill_creates_more_buckets(self, fcn5):
        coarse = build_allreduce_training_graph(fcn5, num_workers=2,
                                                batch_size=8)
        fine = build_allreduce_training_graph(fcn5, num_workers=2,
                                              batch_size=8,
                                              fusion_bytes=1024 * 1024)
        assert len(fine.buckets) > len(coarse.buckets)
        # Oversized gradients spill into single-variable buckets.
        assert all(b.num_variables == 1 or b.nbytes <= 1024 * 1024
                   for b in fine.buckets)

    def test_predicted_bytes_formula(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=4,
                                             batch_size=8)
        expected = 2.0 * fcn5.model_bytes * 3 / 4
        assert job.bytes_per_worker_per_step == pytest.approx(expected)

    def test_all_transfers_static(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=2,
                                             batch_size=8)
        parts = partition(job.graph)
        assert parts.transfers
        assert all(t.static_shape for t in parts.transfers)

    def test_single_worker_has_no_transfers(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=1,
                                             batch_size=8)
        assert partition(job.graph).transfers == []

    def test_unknown_algorithm(self, fcn5):
        with pytest.raises(ValueError, match="unknown allreduce"):
            build_allreduce_training_graph(fcn5, num_workers=2,
                                           batch_size=8, algorithm="tree")

    def test_zero_workers(self, fcn5):
        with pytest.raises(ValueError):
            build_allreduce_training_graph(fcn5, num_workers=0,
                                           batch_size=8)


class TestScheduleConstruction:
    """Eager vs post-barrier flush and priority tagging."""

    def test_eager_packs_have_no_barrier_edges(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=2,
                                             batch_size=8, eager_flush=True)
        packs = [n for n in job.graph if n.op_type == "FusionPack"]
        assert packs
        assert all(not n.control_inputs for n in packs)
        assert job.eager_flush

    def test_barrier_holds_every_pack_behind_backward(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=2,
                                             batch_size=8, eager_flush=False)
        packs = [n for n in job.graph if n.op_type == "FusionPack"]
        assert packs
        # every pack waits on its own worker's last backward stage
        for pack in packs:
            assert len(pack.control_inputs) == 1
            (gate,) = pack.control_inputs
            assert gate.device == pack.device
        assert not job.eager_flush

    def test_barrier_does_not_change_bucket_plan(self, fcn5):
        eager = build_allreduce_training_graph(fcn5, num_workers=2,
                                               batch_size=8,
                                               eager_flush=True)
        barrier = build_allreduce_training_graph(fcn5, num_workers=2,
                                                 batch_size=8,
                                                 eager_flush=False)
        assert [b.nbytes for b in eager.buckets] == [
            b.nbytes for b in barrier.buckets]

    def test_fragments_tagged_with_bucket_priority(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=2,
                                             batch_size=8,
                                             fusion_bytes=1024 * 1024)
        assert len(job.buckets) > 1
        tagged = [n for n in job.graph if "priority" in n.attrs]
        assert tagged
        priorities = {n.attrs["priority"] for n in tagged}
        assert priorities == {b.priority for b in job.buckets}
        # a bucket's pack node carries that bucket's priority
        for bucket in job.buckets:
            pack = job.graph.node(f"w0/pack{bucket.index}")
            assert pack.attrs["priority"] == bucket.priority

    def test_priority_survives_partitioning(self, fcn5):
        job = build_allreduce_training_graph(fcn5, num_workers=2,
                                             batch_size=8,
                                             fusion_bytes=1024 * 1024)
        parts = partition(job.graph)
        sends = [n for sub in parts.subgraphs.values() for n in sub
                 if n.op_type == "_Send"]
        assert sends
        assert any(n.attrs.get("priority", 0) > 0 for n in sends)


class TestRunnerStrategies:
    @pytest.mark.parametrize("strategy", ALLREDUCE_ALGORITHMS)
    def test_runs_and_reports_wire_bytes(self, fcn5, strategy):
        # hierarchical/innetwork need a rack shape; 1-wide racks
        # degenerate to a flat inter-rack exchange with the same wire
        # volume as ring.  On the default flat topology the innetwork
        # strategy falls back to hierarchical, and its prediction
        # follows the algorithm that actually ran.
        extra = ({"hosts_per_rack": 1}
                 if strategy in ("hierarchical", "innetwork") else {})
        result = run_training_benchmark(
            fcn5, "RDMA", num_servers=2, batch_size=8, iterations=3,
            strategy=strategy, collect_metrics=True, **extra)
        assert not result.crashed
        assert result.strategy == strategy
        assert result.step_time > 0
        measured = result.wire_bytes_per_worker()
        assert measured is not None
        # Steady-state wire volume within 5% of 2·M·(N-1)/N.
        assert measured == pytest.approx(result.predicted_wire_bytes,
                                         rel=0.05)

    def test_ps_strategy_has_no_prediction(self, fcn5):
        result = run_training_benchmark(fcn5, "RDMA", num_servers=2,
                                        batch_size=8, iterations=2)
        assert result.strategy == "ps"
        assert result.predicted_wire_bytes is None

    def test_metrics_off_by_default(self, fcn5):
        result = run_training_benchmark(fcn5, "RDMA", num_servers=2,
                                        batch_size=8, iterations=2,
                                        strategy="ring")
        assert result.metrics is None
        assert result.wire_bytes_per_worker() is None

    def test_fusion_spill_end_to_end(self, fcn5):
        result = run_training_benchmark(
            fcn5, "RDMA", num_servers=2, batch_size=8, iterations=2,
            strategy="ring", fusion_bytes=1024 * 1024)
        assert not result.crashed

    def test_unknown_strategy_rejected(self, fcn5):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_training_benchmark(fcn5, "RDMA", num_servers=2,
                                   batch_size=8, strategy="gossip")

    def test_strategies_tuple(self):
        assert STRATEGIES == ("ps", "ring", "halving-doubling",
                              "hierarchical", "innetwork", "llm")


class TestCommConfig:
    def teardown_method(self):
        reset_comm_config()

    def test_defaults(self):
        assert comm_config() == CommConfig()
        assert comm_config().num_cqs == 4
        assert comm_config().num_qps_per_peer == 4
        assert comm_config().backend == "RDMA"

    def test_configure_and_reset(self):
        configure_comm(num_cqs=2, num_qps_per_peer=8, backend="gRPC.TCP")
        assert comm_config() == CommConfig(num_cqs=2, num_qps_per_peer=8,
                                           backend="gRPC.TCP")
        reset_comm_config()
        assert comm_config() == CommConfig()

    def test_partial_override(self):
        configure_comm(num_cqs=1)
        assert comm_config().num_qps_per_peer == 4

    def test_knobs_reach_rdma_runtime(self):
        configure_comm(num_cqs=2, num_qps_per_peer=6)
        comm = make_mechanism("RDMA")
        assert comm.num_cqs == 2
        assert comm.num_qps_per_peer == 6

    def test_auto_resolves_to_configured_backend(self):
        configure_comm(backend="gRPC.TCP")
        assert make_mechanism("auto").name == "gRPC.TCP"

    def test_validation(self):
        with pytest.raises(ValueError):
            configure_comm(num_cqs=0)
        with pytest.raises(ValueError):
            configure_comm(num_qps_per_peer=-1)
        with pytest.raises(ValueError):
            configure_comm(backend="carrier-pigeon")
        with pytest.raises(ValueError):
            configure_comm(backend="auto")
