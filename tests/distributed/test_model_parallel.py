"""Tests for model-parallel (pipeline) training."""

import pytest

from repro.core import RdmaCommRuntime
from repro.distributed.model_parallel import (build_model_parallel_graph,
                                              split_stages)
from repro.distributed.rpc_comm import GrpcCommRuntime
from repro.graph import Session
from repro.graph.partition import partition
from repro.models import get_model
from repro.simnet import Cluster


class TestSplitStages:
    def test_contiguous_and_complete(self):
        spec = get_model("VGGNet-16")
        stages = split_stages(spec, 4)
        flattened = [i for stage in stages for i in stage]
        assert flattened == list(range(spec.num_variables))
        assert len(stages) == 4

    def test_single_stage(self):
        spec = get_model("GRU")
        assert split_stages(spec, 1) == [list(range(spec.num_variables))]

    @pytest.mark.parametrize("name,stages", [
        ("Inception-v3", 8), ("TF-Tiny", 4), ("GPT-350M", 8),
    ])
    def test_byte_balance_bounded(self, name, stages):
        spec = get_model(name)
        split = split_stages(spec, stages)
        sizes = [sum(spec.variables[i].nbytes for i in stage)
                 for stage in split]
        assert max(sizes) <= 2 * (sum(sizes) / len(sizes))

    def test_stages_equal_variables(self):
        spec = get_model("GRU")
        stages = split_stages(spec, spec.num_variables)
        assert len(stages) == spec.num_variables
        assert all(len(stage) == 1 for stage in stages)

    def test_too_many_stages_clamps_with_warning(self):
        spec = get_model("FCN-5")
        with pytest.warns(UserWarning, match="clamp"):
            stages = split_stages(spec, 11)
        assert len(stages) == spec.num_variables
        flattened = [i for stage in stages for i in stage]
        assert flattened == list(range(spec.num_variables))

    def test_deterministic(self):
        spec = get_model("VGGNet-16")
        assert split_stages(spec, 4) == split_stages(spec, 4)
        spec2 = get_model("VGGNet-16")
        assert split_stages(spec, 6) == split_stages(spec2, 6)

    def test_zero_stages(self):
        with pytest.raises(ValueError):
            split_stages(get_model("FCN-5"), 0)


class TestModelParallelGraph:
    def test_devices_and_edges(self):
        spec = get_model("FCN-5")
        job = build_model_parallel_graph(spec, num_stages=4, batch_size=8)
        assert job.devices == ["stage0", "stage1", "stage2", "stage3"]
        parts = partition(job.graph)
        # Forward + backward activation per boundary; variables local.
        assert len(parts.transfers) == 2 * 3
        assert all(t.static_shape for t in parts.transfers)

    def test_cross_stage_volume(self):
        spec = get_model("FCN-5")
        job = build_model_parallel_graph(spec, num_stages=2, batch_size=8,
                                         activation_elements_per_sample=1024)
        parts = partition(job.graph)
        total = sum(t.nbytes_static for t in parts.transfers)
        assert total == job.cross_stage_bytes_per_step
        assert job.activation_bytes == 8 * 1024 * 4

    def test_runs_over_rdma(self):
        spec = get_model("GRU")
        job = build_model_parallel_graph(spec, num_stages=2, batch_size=8)
        cluster = Cluster(2)
        hosts = {f"stage{i}": cluster.hosts[i] for i in range(2)}
        session = Session(cluster, job.graph, hosts, comm=RdmaCommRuntime())
        stats = session.run(iterations=3)
        assert stats.steady_state_time > 0

    def test_rdma_beats_grpc_for_activations(self):
        spec = get_model("FCN-5")

        def run(comm):
            job = build_model_parallel_graph(spec, num_stages=4,
                                             batch_size=32)
            cluster = Cluster(4)
            hosts = {f"stage{i}": cluster.hosts[i] for i in range(4)}
            session = Session(cluster, job.graph, hosts, comm=comm)
            return session.run(iterations=3).steady_state_time

        rdma = run(RdmaCommRuntime())
        grpc = run(GrpcCommRuntime(transport="tcp"))
        assert rdma < grpc

    def test_weights_never_cross_the_network(self):
        """Model parallelism moves activations, not parameters."""
        spec = get_model("FCN-5")
        job = build_model_parallel_graph(spec, num_stages=2, batch_size=4)
        parts = partition(job.graph)
        for transfer in parts.transfers:
            assert transfer.nbytes_static == job.activation_bytes
