"""Unit tests for variable placement and graph replication."""

import pytest

from repro.distributed import (build_training_graph, greedy_placement,
                               placement_balance, round_robin_placement)
from repro.graph.partition import partition
from repro.models import get_model
from repro.models.spec import ModelSpec, VariableSpec


def _uniform_spec(num_vars: int, elements: int = 256) -> ModelSpec:
    """A synthetic model whose variables all have the same size."""
    return ModelSpec(
        name="uniform", family="FCN",
        variables=tuple(VariableSpec(f"v{i}", (elements,))
                        for i in range(num_vars)),
        sample_time=1e-3)


class TestRoundRobin:
    def test_every_variable_placed_once(self):
        spec = get_model("Inception-v3")
        shards = round_robin_placement(spec, num_ps=8)
        placed = [v.name for shard in shards.values() for v in shard]
        assert sorted(placed) == sorted(v.name for v in spec.variables)

    def test_round_robin_order(self):
        spec = get_model("FCN-5")
        shards = round_robin_placement(spec, num_ps=2)
        assert [v.name for v in shards["ps0"]] == \
            [v.name for i, v in enumerate(spec.variables) if i % 2 == 0]

    def test_single_ps(self):
        spec = get_model("GRU")
        shards = round_robin_placement(spec, num_ps=1)
        assert len(shards["ps0"]) == spec.num_variables

    def test_bad_ps_count(self):
        with pytest.raises(ValueError):
            round_robin_placement(get_model("GRU"), num_ps=0)

    def test_balance_metric(self):
        spec = get_model("VGGNet-16")
        shards = round_robin_placement(spec, num_ps=8)
        # VGG's giant fc weight makes round-robin-by-count unbalanced —
        # the real effect behind its poor scalability (Figure 11).
        assert placement_balance(shards) > 2.0
        lstm_shards = round_robin_placement(get_model("LSTM"), num_ps=8)
        assert placement_balance(lstm_shards) < placement_balance(shards)


class TestGreedyTieBreaking:
    """Determinism of the byte-balanced strategy when loads tie.

    Ties are broken by shard name (``min`` over ``(load, name)``) and
    equal-size variables keep spec order (Python's sort is stable), so
    a placement is a pure function of the spec — re-running it can
    never shuffle variables between shards.
    """

    def test_single_variable_lands_on_first_shard(self):
        spec = _uniform_spec(num_vars=1)
        shards = greedy_placement(spec, num_ps=4)
        assert [v.name for v in shards["ps0"]] == ["v0"]
        assert all(not shards[f"ps{i}"] for i in range(1, 4))

    def test_equal_size_variables_round_robin_in_spec_order(self):
        # All loads tie at every step, so the name tie-break walks the
        # shards in order and the stable sort keeps variable order:
        # the result degenerates to round-robin.
        spec = _uniform_spec(num_vars=6)
        shards = greedy_placement(spec, num_ps=3)
        assert [v.name for v in shards["ps0"]] == ["v0", "v3"]
        assert [v.name for v in shards["ps1"]] == ["v1", "v4"]
        assert [v.name for v in shards["ps2"]] == ["v2", "v5"]
        assert placement_balance(shards) == 1.0

    def test_placement_is_deterministic_across_runs(self):
        spec = get_model("VGGNet-16")
        first = greedy_placement(spec, num_ps=8)
        second = greedy_placement(spec, num_ps=8)
        assert {name: [v.name for v in vs] for name, vs in first.items()} \
            == {name: [v.name for v in vs] for name, vs in second.items()}

    def test_every_variable_placed_once(self):
        spec = get_model("Inception-v3")
        shards = greedy_placement(spec, num_ps=8)
        placed = [v.name for shard in shards.values() for v in shard]
        assert sorted(placed) == sorted(v.name for v in spec.variables)

    def test_beats_round_robin_on_skewed_model(self):
        spec = get_model("VGGNet-16")
        assert placement_balance(greedy_placement(spec, num_ps=8)) < \
            placement_balance(round_robin_placement(spec, num_ps=8))

    def test_bad_ps_count(self):
        with pytest.raises(ValueError):
            greedy_placement(get_model("GRU"), num_ps=0)


class TestTrainingGraph:
    def test_devices(self):
        job = build_training_graph(get_model("FCN-5"), num_workers=3,
                                   batch_size=8)
        assert sorted(job.devices) == ["ps0", "ps1", "ps2",
                                       "worker0", "worker1", "worker2"]

    def test_bytes_per_step(self):
        spec = get_model("FCN-5")
        job = build_training_graph(spec, num_workers=2, batch_size=8)
        assert job.bytes_per_worker_per_step == 2 * spec.model_bytes

    def test_transfer_volume_matches_model(self):
        spec = get_model("FCN-5")
        job = build_training_graph(spec, num_workers=2, batch_size=8)
        parts = partition(job.graph)
        total = sum(t.nbytes_static for t in parts.transfers)
        assert total == 2 * 2 * spec.model_bytes  # 2 workers x 2 directions

    def test_per_layer_stages_exist(self):
        spec = get_model("FCN-5")
        job = build_training_graph(spec, num_workers=1, batch_size=8)
        fwd = [n for n in job.graph if "/fwd/" in n.name]
        bwd = [n for n in job.graph if "/bwd/" in n.name]
        assert len(fwd) == spec.num_variables
        assert len(bwd) == spec.num_variables

    def test_stage_times_sum_to_compute_time(self):
        spec = get_model("GRU")
        batch = 16
        job = build_training_graph(spec, num_workers=1, batch_size=batch)
        total = sum(n.attrs["time"] for n in job.graph
                    if n.op_type == "SyntheticCompute")
        assert total == pytest.approx(spec.compute_time(batch))

    def test_apply_nodes_on_variable_shards(self):
        spec = get_model("FCN-5")
        job = build_training_graph(spec, num_workers=2, batch_size=8)
        for node in job.graph:
            if node.op_type == "ApplyGradient":
                variable = job.graph.node(node.attrs["variable"])
                assert node.device == variable.device

    def test_local_mode_single_device_no_transfers(self):
        job = build_training_graph(get_model("GRU"), num_workers=1,
                                   batch_size=8, local=True)
        assert job.devices == ["local0"]
        assert partition(job.graph).transfers == []

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            build_training_graph(get_model("GRU"), num_workers=0,
                                 batch_size=8)

    def test_all_transfer_shapes_static(self):
        """§5.2: the analyzer statically infers every transmitted shape
        for these benchmarks, so all edges use static placement."""
        job = build_training_graph(get_model("LSTM"), num_workers=2,
                                   batch_size=8)
        parts = partition(job.graph)
        assert all(t.static_shape for t in parts.transfers)
