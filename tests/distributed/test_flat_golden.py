"""Flat-topology clock pinning: golden full-precision step times.

The fabric subsystem and the simulator-core fast paths must not move a
single bit of any flat-topology clock.  These constants are exact
``repr()`` captures of simulated times from the flat model; any ulp of
drift — a reordered float addition, a merged timeout, an accidental
fabric charge on the default topology — fails the comparison.

If a future change *intends* to alter flat timing (a cost-model
recalibration, say), re-record these constants in that PR and say so
in its description.
"""

from dataclasses import replace

from repro.distributed import run_training_benchmark
from repro.distributed.runner import comm_config, swap_comm_config
from repro.models import get_model
from repro.workloads import run_microbench

GOLDEN_MICROBENCH_RDMA_4MB = "0.00034234437"

GOLDEN_GRU = {
    # (num_servers, strategy, priority_sched) -> exact iteration times
    (2, "ps", False): ["0.03237252906103142", "0.03190254480000011"],
    (4, "ring", False): ["0.03987071006845732", "0.03703838768000032"],
    (4, "halving-doubling", False): ["0.039787400882148584",
                                     "0.036956287680000234"],
    (3, "ring", True): ["0.03901281854669927", "0.03649596168000036"],
}


def test_microbench_clock_bit_identical():
    result = run_microbench("RDMA", 4 << 20, iterations=3)
    assert repr(result.transfer_seconds) == GOLDEN_MICROBENCH_RDMA_4MB


def _iteration_reprs(num_servers, strategy, priority_sched, qp_mode="rc"):
    kwargs = {}
    if strategy != "ps":
        kwargs["strategy"] = strategy
    if priority_sched:
        kwargs["priority_sched"] = True
    previous = swap_comm_config(replace(comm_config(), qp_mode=qp_mode))
    try:
        bench = run_training_benchmark(get_model("GRU"), "RDMA",
                                       num_servers=num_servers, batch_size=8,
                                       iterations=2, **kwargs)
    finally:
        swap_comm_config(previous)
    return [repr(t) for t in bench.stats.iteration_times]


def test_gru_ps_clock_bit_identical():
    assert _iteration_reprs(2, "ps", False) == GOLDEN_GRU[(2, "ps", False)]


def test_gru_ring_clock_bit_identical():
    assert (_iteration_reprs(4, "ring", False)
            == GOLDEN_GRU[(4, "ring", False)])


def test_gru_halving_doubling_clock_bit_identical():
    assert (_iteration_reprs(4, "halving-doubling", False)
            == GOLDEN_GRU[(4, "halving-doubling", False)])


def test_gru_ring_priority_clock_bit_identical():
    assert (_iteration_reprs(3, "ring", True)
            == GOLDEN_GRU[(3, "ring", True)])


def test_gru_ps_shared_qp_clock_bit_identical():
    """DCT-style shared endpoints must keep loss-free clocks pinned to
    the RC constants: connection multiplexing changes QP state, never
    loss-free wire timing."""
    assert (_iteration_reprs(2, "ps", False, qp_mode="shared")
            == GOLDEN_GRU[(2, "ps", False)])


def test_gru_ring_shared_qp_clock_bit_identical():
    assert (_iteration_reprs(4, "ring", False, qp_mode="shared")
            == GOLDEN_GRU[(4, "ring", False)])


def test_gru_ring_priority_shared_qp_clock_bit_identical():
    """Shared endpoints under the priority quantum scheduler: the
    per-destination prio ingress chains keep the RC clock exactly."""
    assert (_iteration_reprs(3, "ring", True, qp_mode="shared")
            == GOLDEN_GRU[(3, "ring", True)])
