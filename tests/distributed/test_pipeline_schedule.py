"""Tests for the microbatched pipeline schedules (GPipe / 1F1B)."""

import pytest

from repro.core import RdmaCommRuntime
from repro.distributed.model_parallel import (PipelineJob,
                                              build_model_parallel_graph,
                                              pipeline_bubble_report,
                                              schedule_order)
from repro.distributed.runner import run_training_benchmark
from repro.graph import Session
from repro.graph.partition import partition
from repro.models import get_model
from repro.simnet import Cluster


def _run_traced(schedule, stages=4, microbatches=4, batch=8,
                model="TF-Tiny", iterations=3):
    bench = run_training_benchmark(
        get_model(model), "RDMA", num_servers=stages, batch_size=batch,
        iterations=iterations, strategy="llm", microbatches=microbatches,
        schedule=schedule, collect_trace=True)
    assert not bench.crashed, bench.crash_reason
    return bench


class TestScheduleOrder:
    @pytest.mark.parametrize("schedule", ["gpipe", "1f1b"])
    def test_every_microbatch_once(self, schedule):
        for stage in range(4):
            order = schedule_order(schedule, 4, stage, 6)
            assert sorted(c for c in order if c[0] == "F") == \
                [("F", m) for m in range(6)]
            assert sorted(c for c in order if c[0] == "B") == \
                [("B", m) for m in range(6)]

    def test_gpipe_all_forwards_first(self):
        order = schedule_order("gpipe", 4, 2, 4)
        kinds = [kind for kind, _ in order]
        assert kinds == ["F"] * 4 + ["B"] * 4

    def test_1f1b_warmup_depth(self):
        # Stage s warms up min(S-1-s, M) forwards, then alternates
        # F,B: the last stage alternates immediately, the first holds
        # S-1 microbatches in flight.
        for stage in range(4):
            order = schedule_order("1f1b", 4, stage, 8)
            kinds = [kind for kind, _ in order]
            assert kinds.index("B") == min(4 - 1 - stage, 8) + 1

    def test_1f1b_backwards_in_order(self):
        order = schedule_order("1f1b", 4, 1, 6)
        backs = [mb for kind, mb in order if kind == "B"]
        assert backs == sorted(backs)

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            schedule_order("interleaved", 4, 0, 4)


class TestScheduledGraph:
    def test_transfer_count(self):
        job = build_model_parallel_graph(get_model("TF-Tiny"), num_stages=4,
                                         batch_size=8, microbatches=4)
        parts = partition(job.graph)
        # One forward + one backward activation per boundary per
        # microbatch, all statically shaped for pre-registered RDMA.
        assert len(parts.transfers) == 2 * 4 * (4 - 1)
        assert all(t.static_shape for t in parts.transfers)

    def test_microbatch_scales_transfer_bytes(self):
        spec = get_model("TF-Tiny")
        whole = build_model_parallel_graph(spec, num_stages=2, batch_size=8,
                                           microbatches=1)
        split = build_model_parallel_graph(spec, num_stages=2, batch_size=8,
                                           microbatches=4)
        whole_bytes = sum(t.nbytes_static
                          for t in partition(whole.graph).transfers)
        split_bytes = sum(t.nbytes_static
                          for t in partition(split.graph).transfers)
        # Same total activation volume, just chunked into microbatches.
        assert whole_bytes == split_bytes
        assert split.cross_stage_bytes_per_step == split_bytes

    def test_batch_must_divide(self):
        with pytest.raises(ValueError):
            build_model_parallel_graph(get_model("TF-Tiny"), num_stages=2,
                                       batch_size=6, microbatches=4)

    def test_legacy_path_unchanged(self):
        # microbatches=None keeps the original single-shot graph shape
        # (the golden-clock suites run through this path).
        job = build_model_parallel_graph(get_model("FCN-5"), num_stages=4,
                                         batch_size=8)
        assert not isinstance(job, PipelineJob)
        assert len(partition(job.graph).transfers) == 2 * 3

    def test_runs_over_rdma(self):
        job = build_model_parallel_graph(get_model("TF-Tiny"), num_stages=2,
                                         batch_size=8, microbatches=4)
        cluster = Cluster(2)
        hosts = {f"stage{i}": cluster.hosts[i] for i in range(2)}
        session = Session(cluster, job.graph, hosts, comm=RdmaCommRuntime())
        stats = session.run(iterations=3)
        assert stats.steady_state_time > 0


class TestBubbleAccounting:
    def test_1f1b_beats_gpipe_at_4_stages(self):
        gpipe = _run_traced("gpipe")
        onef1b = _run_traced("1f1b")
        g = pipeline_bubble_report(gpipe.pipeline, gpipe.stall_report())
        f = pipeline_bubble_report(onef1b.pipeline, onef1b.stall_report())
        assert f["bubble_fraction"] < g["bubble_fraction"]
        assert onef1b.step_time < gpipe.step_time

    @pytest.mark.parametrize("schedule", ["gpipe", "1f1b"])
    def test_decomposition_sums_to_step(self, schedule):
        bench = _run_traced(schedule)
        report = pipeline_bubble_report(bench.pipeline,
                                        bench.stall_report())
        # op + bubble - remat must reconstruct the measured step time
        # exactly: the bubble is accounted, not estimated.
        assert abs(report["accounting_residual_s"]) < 1e-9
        for stage in report["per_stage"]:
            assert stage["bubble_s"] >= 0
            assert 0 <= stage["useful_fraction"] <= 1

    def test_gpipe_pays_rematerialization(self):
        bench = _run_traced("gpipe")
        report = pipeline_bubble_report(bench.pipeline,
                                        bench.stall_report())
        assert report["rematerialize"]
        assert all(s["remat_s"] > 0 for s in report["per_stage"])
        onef1b = _run_traced("1f1b")
        f = pipeline_bubble_report(onef1b.pipeline, onef1b.stall_report())
        assert not f["rematerialize"]
        assert all(s["remat_s"] == 0 for s in f["per_stage"])


class TestRunnerIntegration:
    def test_llm_strategy_end_to_end(self):
        bench = _run_traced("1f1b", stages=2, microbatches=2, batch=4,
                            iterations=2)
        assert bench.pipeline is not None
        assert bench.pipeline.schedule == "1f1b"
        assert bench.step_time > 0

    def test_llm_rejects_local(self):
        with pytest.raises(ValueError, match="no Local mode"):
            run_training_benchmark(
                get_model("TF-Tiny"), "Local", num_servers=2, batch_size=4,
                iterations=2, strategy="llm")

    def test_works_on_cnn_models_too(self):
        # The llm strategy is about the pipeline schedule, not the
        # model family: any layered spec can ride it.
        bench = run_training_benchmark(
            get_model("FCN-5"), "RDMA", num_servers=2, batch_size=8,
            iterations=2, strategy="llm", microbatches=2)
        assert not bench.crashed, bench.crash_reason
        assert bench.pipeline is not None
