"""Integration tests for the distributed benchmark runner."""

import pytest

from repro.core import RdmaCommRuntime
from repro.distributed import (MECHANISMS, make_mechanism,
                               run_training_benchmark)
from repro.models import get_model
from repro.models.convergence import sentence_embedding_spec


@pytest.fixture(scope="module")
def fcn5():
    return get_model("FCN-5")


class TestMechanismFactory:
    @pytest.mark.parametrize("name", MECHANISMS)
    def test_factory_builds_each(self, name):
        assert make_mechanism(name) is not None

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            make_mechanism("carrier-pigeon")

    def test_labels(self):
        assert make_mechanism("RDMA").name == "RDMA"
        assert make_mechanism("RDMA.cp").name == "RDMA.cp"
        assert make_mechanism("RDMA+GDR").name == "RDMA+GDR"
        assert make_mechanism("gRPC.TCP").name == "gRPC.TCP"


class TestRunner:
    def test_result_fields(self, fcn5):
        result = run_training_benchmark(fcn5, "RDMA", num_servers=2,
                                        batch_size=8, iterations=3)
        assert not result.crashed
        assert result.model == "FCN-5"
        assert result.num_servers == 2
        assert result.step_time > 0
        assert result.throughput == pytest.approx(1 / result.step_time)
        assert result.samples_per_second == pytest.approx(
            result.throughput * 8 * 2)

    def test_steady_state_excludes_warmup(self, fcn5):
        result = run_training_benchmark(fcn5, "RDMA", num_servers=2,
                                        batch_size=8, iterations=4)
        times = result.stats.iteration_times
        assert len(times) == 4
        # Iteration 0 stages (tracing not yet active): slowest.
        assert times[0] >= max(times[1:])

    def test_local_runs_single_host(self, fcn5):
        result = run_training_benchmark(fcn5, "Local", num_servers=8,
                                        batch_size=8, iterations=2)
        assert not result.crashed
        assert result.step_time > 0

    def test_mechanism_ranking_end_to_end(self, fcn5):
        times = {}
        for mechanism in ("RDMA", "RDMA.cp", "gRPC.RDMA", "gRPC.TCP"):
            result = run_training_benchmark(fcn5, mechanism, num_servers=2,
                                            batch_size=8, iterations=3)
            times[mechanism] = result.step_time
        assert times["RDMA"] <= times["RDMA.cp"] * 1.01
        assert times["RDMA.cp"] < times["gRPC.RDMA"] < times["gRPC.TCP"]

    def test_gdr_beats_gpu_staging(self, fcn5):
        gpu = run_training_benchmark(fcn5, "RDMA.gpu", num_servers=2,
                                     batch_size=8, iterations=3)
        gdr = run_training_benchmark(fcn5, "RDMA+GDR", num_servers=2,
                                     batch_size=8, iterations=3)
        assert gdr.step_time < gpu.step_time

    def test_se_crashes_grpc_rdma_but_not_others(self):
        spec = sentence_embedding_spec()
        crash = run_training_benchmark(spec, "gRPC.RDMA", num_servers=2,
                                       batch_size=8, iterations=2)
        assert crash.crashed
        assert "exceeds the maximum" in crash.crash_reason
        ok = run_training_benchmark(spec, "RDMA", num_servers=2,
                                    batch_size=8, iterations=2)
        assert not ok.crashed

    def test_comm_override_used(self, fcn5):
        comm = RdmaCommRuntime(force_dynamic=True)
        result = run_training_benchmark(fcn5, "RDMA(custom)", num_servers=2,
                                        batch_size=8, iterations=2, comm=comm)
        assert not result.crashed
        assert comm.state.bytes_sent > 0

    def test_scaling_servers_increases_aggregate_throughput(self, fcn5):
        results = {n: run_training_benchmark(fcn5, "RDMA", num_servers=n,
                                             batch_size=8, iterations=3)
                   for n in (2, 4)}
        assert (results[4].throughput * 4) > (results[2].throughput * 2)


class TestStepTimePercentiles:
    def test_percentiles_over_steady_state(self, fcn5):
        result = run_training_benchmark(fcn5, "RDMA", num_servers=2,
                                        batch_size=8, iterations=5)
        report = result.step_time_percentiles()
        assert report["count"] == 4  # warmup iteration excluded
        assert report["min"] <= report["p50"] <= report["p99"] \
            <= report["max"]
        assert "p99.9" in report
        assert result.step_time_p50 == report["p50"]
        assert result.step_time_p99 == report["p99"]
        # The mean of the steady-state iterations is the headline
        # step_time; the percentile report must agree with it.
        assert report["mean"] == pytest.approx(result.step_time)

    def test_custom_percentile_list(self, fcn5):
        result = run_training_benchmark(fcn5, "RDMA", num_servers=2,
                                        batch_size=8, iterations=3)
        report = result.step_time_percentiles(percentiles=(10, 95))
        assert "p10" in report and "p95" in report
        assert "p99" not in report

    def test_crashed_run_reports_empty(self):
        spec = sentence_embedding_spec()
        crash = run_training_benchmark(spec, "gRPC.RDMA", num_servers=2,
                                       batch_size=8, iterations=2)
        assert crash.crashed
        assert crash.step_time_percentiles() == {}
        assert crash.step_time_p99 == 0.0
