"""Wire-byte identity tests: analytic formulas vs measured traffic.

Each collective has a closed-form per-worker egress volume:

* flat ring — ``2·M·(N-1)/N`` (reduce-scatter + all-gather);
* halving-doubling — the same ``2·M·(N-1)/N`` at power-of-two N;
* hierarchical — intra-rack ring twice over ``H`` hosts plus the
  leaders' inter-rack exchange amortized across the rack;
* in-network — ``M``: each worker writes its gradient up to the ToR
  once and receives the reduced result back once.

The simulator is deterministic and the metrics layer counts every
payload byte, so the measured steady-state egress must match the
formula to 1% — a drift means the collective changed shape, not noise.
"""

import pytest

from repro.collectives import (hierarchical_wire_bytes,
                               innetwork_wire_bytes,
                               innetwork_uplink_bytes)
from repro.distributed import run_training_benchmark
from repro.models import get_model
from repro.simnet.verbs import (ROLE_INNETWORK_AGGREGATE,
                                ROLE_INNETWORK_RESULT,
                                ROLE_INNETWORK_TRUNK, ROLE_RETRANSMIT)


@pytest.fixture(scope="module")
def fcn5():
    return get_model("FCN-5")


def _steady_bytes_by_role(result):
    """Measured bytes per role per steady step, averaged over workers.

    Mirrors ``wire_bytes_per_worker`` (same steady window, same
    per-host averaging) but keeps the per-role breakdown.
    """
    steady_start = result.stats.iteration_end_times[0]
    steady_iterations = len(result.stats.iteration_end_times) - 1
    workers = set(result.worker_hosts)
    by_role = {}
    for t in result.metrics.transfers:
        if t.start >= steady_start and t.src_host in workers:
            by_role[t.role] = by_role.get(t.role, 0) + t.nbytes
    return {role: total / (len(workers) * steady_iterations)
            for role, total in by_role.items()}


def _run(spec, strategy, n, **extra):
    result = run_training_benchmark(
        spec, "RDMA", num_servers=n, batch_size=8, iterations=3,
        strategy=strategy, collect_metrics=True, **extra)
    assert not result.crashed, result.crash_reason
    return result


def test_ring_identity(fcn5):
    n, M = 4, fcn5.model_bytes
    result = _run(fcn5, "ring", n)
    assert result.wire_bytes_per_worker() == \
        pytest.approx(2.0 * M * (n - 1) / n, rel=0.01)


def test_halving_doubling_identity(fcn5):
    # Power-of-two N: recursive halving/doubling moves the same
    # 2·M·(N-1)/N as the ring, just in log(N) rounds.
    n, M = 4, fcn5.model_bytes
    result = _run(fcn5, "halving-doubling", n)
    assert result.wire_bytes_per_worker() == \
        pytest.approx(2.0 * M * (n - 1) / n, rel=0.01)


def test_hierarchical_identity(fcn5):
    n, hosts_per_rack = 8, 4
    result = _run(fcn5, "hierarchical", n, topology="fat-tree",
                  hosts_per_rack=hosts_per_rack)
    predicted = hierarchical_wire_bytes(fcn5.model_bytes, n,
                                        hosts_per_rack)
    assert result.wire_bytes_per_worker() == \
        pytest.approx(predicted, rel=0.01)


def test_innetwork_identity(fcn5):
    # The tentpole claim: switch aggregation cuts per-worker egress
    # from 2·M·(N-1)/N to exactly M.
    n, M = 8, fcn5.model_bytes
    result = _run(fcn5, "innetwork", n, topology="fat-tree",
                  hosts_per_rack=4)
    measured = result.wire_bytes_per_worker()
    assert measured == pytest.approx(M, rel=0.01)
    assert innetwork_wire_bytes(M, n) == M
    # All steady worker egress carries the aggregate role: nothing
    # spilled to the host path, nothing rode a different collective.
    by_role = _steady_bytes_by_role(result)
    assert by_role[ROLE_INNETWORK_AGGREGATE] == pytest.approx(M, rel=0.01)
    assert set(by_role) == {ROLE_INNETWORK_AGGREGATE}


def test_innetwork_result_bytes_match_model(fcn5):
    # Downstream identity: each worker also receives exactly M back.
    n, M = 8, fcn5.model_bytes
    result = _run(fcn5, "innetwork", n, topology="fat-tree",
                  hosts_per_rack=4)
    steady_start = result.stats.iteration_end_times[0]
    steady = len(result.stats.iteration_end_times) - 1
    workers = set(result.worker_hosts)
    landed = sum(t.nbytes for t in result.metrics.transfers
                 if t.start >= steady_start and t.dst_host in workers
                 and t.role == ROLE_INNETWORK_RESULT)
    assert landed / (len(workers) * steady) == pytest.approx(M, rel=0.01)


def test_innetwork_trunk_identity(fcn5):
    # Each rack's trunk carries its partial up and the result down:
    # 2·M per rack per step, independent of rack width.
    n, hosts_per_rack, M = 8, 4, fcn5.model_bytes
    racks = n // hosts_per_rack
    result = _run(fcn5, "innetwork", n, topology="fat-tree",
                  hosts_per_rack=hosts_per_rack)
    steady_start = result.stats.iteration_end_times[0]
    steady = len(result.stats.iteration_end_times) - 1
    trunk = sum(t.nbytes for t in result.metrics.transfers
                if t.start >= steady_start
                and t.role == ROLE_INNETWORK_TRUNK)
    per_rack = innetwork_uplink_bytes(M, racks)
    assert per_rack == 2 * M
    assert trunk / (racks * steady) == pytest.approx(per_rack, rel=0.01)


def _total_bytes_by_role(result):
    """Whole-run wire bytes by role (no steady window): comparable to
    the fault plane's whole-run injected log."""
    by_role = {}
    for t in result.metrics.transfers:
        by_role[t.role] = by_role.get(t.role, 0) + t.nbytes
    return by_role


def _injected_loss_bytes(result):
    log = result.stats.faults["injected"]["log"]
    return sum(e["size"] for e in log if e["kind"] == "loss")


def test_ring_loss_retransmit_byte_identity(fcn5):
    """The loss-tolerant transport's wire accounting, both halves:

    * goodput identity — every original role's byte total is exactly
      the loss-free volume (first attempts keep their role, even when
      the fabric eats them, and late originals are never re-sent);
    * retransmit identity — ``ROLE_RETRANSMIT`` bytes equal the
      injected-loss bytes exactly, one re-issue per loss event.
    """
    n = 4
    clean = _run(fcn5, "ring", n)
    lossy = _run(fcn5, "ring", n, loss_rate=2e-3, fault_seed=5)
    clean_roles = _total_bytes_by_role(clean)
    lossy_roles = _total_bytes_by_role(lossy)
    lost = _injected_loss_bytes(lossy)
    assert lost > 0, "seed produced no losses; pick another"
    recovery = lossy.stats.faults["recovery"]
    assert recovery["gave_up"] == 0
    retransmitted = lossy_roles.pop(ROLE_RETRANSMIT)
    assert retransmitted == lost
    assert retransmitted == recovery["retransmitted_bytes"]
    assert lossy_roles == clean_roles


def test_hierarchical_loss_retransmit_byte_identity(fcn5):
    n, hosts_per_rack = 8, 4
    kwargs = dict(topology="fat-tree", hosts_per_rack=hosts_per_rack)
    clean = _run(fcn5, "hierarchical", n, **kwargs)
    lossy = _run(fcn5, "hierarchical", n, loss_rate=2e-3, fault_seed=5,
                 **kwargs)
    lost = _injected_loss_bytes(lossy)
    assert lost > 0
    assert lossy.stats.faults["recovery"]["gave_up"] == 0
    clean_roles = _total_bytes_by_role(clean)
    lossy_roles = _total_bytes_by_role(lossy)
    assert lossy_roles.pop(ROLE_RETRANSMIT) == lost
    assert lossy_roles == clean_roles


def test_innetwork_loss_retransmit_byte_identity(fcn5):
    """Aggregation uplinks bypass the verb path; their loss hook must
    keep the same identity: lost uplink chunks burn wire under their
    original role and come back as exactly-matching retransmit bytes."""
    n = 8
    kwargs = dict(topology="fat-tree", hosts_per_rack=4)
    clean = _run(fcn5, "innetwork", n, **kwargs)
    lossy = _run(fcn5, "innetwork", n, loss_rate=2e-3, fault_seed=5,
                 **kwargs)
    lost = _injected_loss_bytes(lossy)
    assert lost > 0
    clean_roles = _total_bytes_by_role(clean)
    lossy_roles = _total_bytes_by_role(lossy)
    assert lossy_roles.pop(ROLE_RETRANSMIT, 0) == lost
    assert lossy_roles == clean_roles


def test_loss_free_metrics_identical_in_shared_qp_mode(fcn5):
    """Same transfers, same roles, same bytes: the shared-endpoint data
    plane moves identical wire traffic to RC when nothing is lost."""
    from dataclasses import replace

    from repro.distributed.runner import comm_config, swap_comm_config

    rc = _run(fcn5, "ring", 4)
    previous = swap_comm_config(replace(comm_config(), qp_mode="shared"))
    try:
        shared = _run(fcn5, "ring", 4)
    finally:
        swap_comm_config(previous)
    assert _total_bytes_by_role(shared) == _total_bytes_by_role(rc)
    assert shared.stats.iteration_times == rc.stats.iteration_times


def test_innetwork_beats_ring_on_the_wire(fcn5):
    # The comparative identity the whole backend exists for: ~M vs
    # ~2M per worker at N=8 (ring sends 1.75M).
    n = 8
    ring = _run(fcn5, "ring", n)
    innet = _run(fcn5, "innetwork", n, topology="fat-tree",
                 hosts_per_rack=4)
    ratio = (innet.wire_bytes_per_worker()
             / ring.wire_bytes_per_worker())
    assert ratio == pytest.approx(n / (2.0 * (n - 1)), rel=0.01)
