"""Microbench: raw event throughput of the discrete-event engine.

The 128-256-worker fat-tree sweeps are engine-bound — every tensor in
the scale model takes a virtual (size-only) backing, so wall-clock is
events processed per second, nothing else.  This benchmark drives the
engine's two hot paths directly, with no cluster on top:

* the bare-delay fast path (``yield 1e-6`` — allocation-free timeouts),
  which executor, NIC, and transfer loops sit on;
* the event-wait path (``yield event`` park/wake pairs), which models
  completion signalling;
* the absolute-time path (``yield SleepUntil(t)``), which the
  executors' batched poll visits ride: dispatch + flag check merged
  into one heap event per polling sweep.

It prints the sustained events/second and asserts a conservative floor
so a future regression to the scheduling core (an accidental object
per yield, a linear scan in the heap path) fails loudly rather than
silently doubling the scale-sweep CI budget.
"""

import time

from repro.simnet.simulator import Simulator, SleepUntil


def _run_bare_delay(num_processes: int, yields_per_process: int) -> int:
    sim = Simulator()

    def worker(delay):
        for _ in range(yields_per_process):
            yield delay

    for i in range(num_processes):
        # Distinct delays keep the heap honestly interleaved.
        sim.spawn(worker(1e-6 * (1 + i % 7)))
    sim.run()
    return sim.event_count


def _run_event_pingpong(pairs: int, rounds: int) -> int:
    sim = Simulator()

    def ping(peer_events, my_events):
        for r in range(rounds):
            peer_events[r].succeed()
            yield my_events[r]

    def pong(peer_events, my_events):
        for r in range(rounds):
            yield my_events[r]
            peer_events[r].succeed()

    for _ in range(pairs):
        a_waits = [sim.event() for _ in range(rounds)]
        b_waits = [sim.event() for _ in range(rounds)]
        sim.spawn(ping(b_waits, a_waits))
        sim.spawn(pong(a_waits, b_waits))
    sim.run()
    return sim.event_count


def _run_sleep_until(num_processes: int, wakes_per_process: int) -> int:
    sim = Simulator()

    def poller(period):
        # Replays the executor's poll-visit pattern: the process
        # precomputes its wake time (dispatch + flag check back to
        # back) and parks on the absolute-time sentinel.
        when = 0.0
        for _ in range(wakes_per_process):
            when = when + period
            yield SleepUntil(when)

    for i in range(num_processes):
        # Distinct periods keep the heap honestly interleaved.
        sim.spawn(poller(1e-6 * (1 + i % 7)))
    sim.run()
    return sim.event_count


def test_bare_delay_throughput(benchmark):
    events = {}

    def run():
        events["count"] = _run_bare_delay(num_processes=64,
                                          yields_per_process=2000)

    benchmark.pedantic(run, rounds=3, iterations=1)
    wall = benchmark.stats.stats.mean
    rate = events["count"] / wall
    print(f"\nbare-delay: {events['count']} events in {wall:.3f}s "
          f"= {rate / 1e6:.2f}M events/s")
    # Conservative floor: the fast path sustains well over 1M events/s
    # on any recent CPU; trip only on an order-of-magnitude regression.
    assert rate > 200_000


def test_event_wait_throughput(benchmark):
    events = {}

    def run():
        events["count"] = _run_event_pingpong(pairs=64, rounds=1000)

    benchmark.pedantic(run, rounds=3, iterations=1)
    wall = benchmark.stats.stats.mean
    rate = events["count"] / wall
    print(f"\nevent-wait: {events['count']} events in {wall:.3f}s "
          f"= {rate / 1e6:.2f}M events/s")
    assert rate > 100_000


def test_sleep_until_throughput(benchmark):
    events = {}

    def run():
        events["count"] = _run_sleep_until(num_processes=64,
                                           wakes_per_process=2000)

    benchmark.pedantic(run, rounds=3, iterations=1)
    wall = benchmark.stats.stats.mean
    rate = events["count"] / wall
    print(f"\nsleep-until: {events['count']} events in {wall:.3f}s "
          f"= {rate / 1e6:.2f}M events/s")
    # The absolute-time sentinel must stay on the allocation-free fast
    # path: one heap event per poll visit, no Timeout object churn.
    assert rate > 200_000
