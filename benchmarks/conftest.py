"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper on the
simulated cluster, prints the rendered result, and asserts the
paper's qualitative claims (who wins, by roughly what factor, where
crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def show(result) -> None:
    """Print a rendered experiment table (visible with -s or on failure)."""
    print()
    print(result.render())


@pytest.fixture
def regen(benchmark):
    """Run an experiment function once under pytest-benchmark timing."""
    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        show(result)
        return result
    return _run
