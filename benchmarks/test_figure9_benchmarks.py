"""Figure 9: training throughput vs mini-batch size, 8 servers.

Paper claims verified per benchmark: RDMA beats gRPC.RDMA with
average improvements between 65% (Inception-v3) and 169% (AlexNet);
communication-bound benchmarks (AlexNet/VGG/FCN-5) keep a flat step
time as the batch grows, while compute-bound ones (Inception, LSTM,
GRU) see the gap close at large batches.
"""

from repro.harness import figure9


BATCHES = (1, 16, 32, 64)
COMM_BOUND = ("AlexNet", "VGGNet-16", "FCN-5")
COMPUTE_BOUND = ("Inception-v3", "LSTM", "GRU")


def test_figure9(regen):
    result = regen(figure9, batches=BATCHES, iterations=3)

    def step(model, mechanism, batch):
        return result.cell("step_time_ms", benchmark=model,
                           mechanism=mechanism, batch_size=batch)

    # Mechanism ordering holds for every model and batch size (at
    # batch 64 the compute-bound models are nearly mechanism-agnostic,
    # hence the small tolerance).
    for model in COMM_BOUND + COMPUTE_BOUND:
        for batch in BATCHES:
            rdma = step(model, "RDMA", batch)
            grpc = step(model, "gRPC.RDMA", batch)
            tcp = step(model, "gRPC.TCP", batch)
            assert rdma <= grpc * 1.02, (model, batch)
            assert grpc < tcp, (model, batch)

    # Average improvement over gRPC.RDMA: the paper reports 65%-169%
    # across benchmarks; communication-bound models gain by far the
    # most, and every benchmark gains.
    improvements = {}
    for model in COMM_BOUND + COMPUTE_BOUND:
        gains = [(step(model, "gRPC.RDMA", b) - step(model, "RDMA", b))
                 / step(model, "RDMA", b) * 100 for b in BATCHES]
        improvements[model] = sum(gains) / len(gains)
    assert max(improvements.values()) > 100
    assert min(improvements.values()) > 10
    # Communication-bound benchmarks gain more than compute-bound ones.
    assert (min(improvements[m] for m in COMM_BOUND)
            > max(improvements[m] for m in COMPUTE_BOUND))

    # AlexNet/VGG/FCN-5 step time is comparatively stable across batch
    # sizes (comm volume is batch-independent), while compute-bound
    # models grow substantially past the GPU saturation point (§5.2).
    for model in COMM_BOUND:
        assert step(model, "RDMA", 64) < 2.1 * step(model, "RDMA", 1), model
    for model in COMPUTE_BOUND:
        assert step(model, "RDMA", 64) > 2.5 * step(model, "RDMA", 1), model

    # For compute-bound models the RDMA advantage shrinks at batch 64.
    for model in COMPUTE_BOUND:
        gap_small = step(model, "gRPC.RDMA", 1) / step(model, "RDMA", 1)
        gap_large = step(model, "gRPC.RDMA", 64) / step(model, "RDMA", 64)
        assert gap_large < gap_small, model

    # Paper: improvements over gRPC.TCP are much greater (~25x for VGG).
    assert step("VGGNet-16", "gRPC.TCP", 32) / step("VGGNet-16", "RDMA", 32) > 4
