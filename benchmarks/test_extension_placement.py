"""Extension: greedy byte-balanced placement vs the paper's round-robin.

The paper places variables on parameter servers round-robin (§5.2),
which leaves one PS holding VGG's giant fc weight — the hot shard
behind its sub-linear scaling in Figure 11.  TensorFlow later shipped
``GreedyLoadBalancingStrategy``; this extension measures how much a
byte-balanced placement recovers, and that it changes nothing for
already-balanced models.
"""

from repro.distributed import (greedy_placement, placement_balance,
                               round_robin_placement,
                               run_training_benchmark)
from repro.models import get_model


def sweep():
    out = {}
    for name in ("VGGNet-16", "AlexNet", "Inception-v3"):
        spec = get_model(name)
        rr = run_training_benchmark(spec, "RDMA", num_servers=8,
                                    batch_size=32, iterations=3,
                                    placement="round_robin")
        greedy = run_training_benchmark(spec, "RDMA", num_servers=8,
                                        batch_size=32, iterations=3,
                                        placement="greedy")
        assert not rr.crashed and not greedy.crashed
        out[name] = (rr.step_time, greedy.step_time)
    return out


def test_extension_greedy_placement(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Extension: PS variable placement (RDMA, 8 servers, b=32) ==")
    print(f"{'benchmark':>14}  {'round-robin ms':>15}  {'greedy ms':>10}  "
          f"{'gain %':>7}")
    for name, (rr, greedy) in results.items():
        gain = (rr - greedy) / rr * 100
        print(f"{name:>14}  {rr * 1e3:>15.1f}  {greedy * 1e3:>10.1f}  "
              f"{gain:>7.1f}")

    # Balance metric: greedy is never worse, much better for VGG.
    for name in results:
        spec = get_model(name)
        rr_balance = placement_balance(round_robin_placement(spec, 8))
        greedy_balance = placement_balance(greedy_placement(spec, 8))
        assert greedy_balance <= rr_balance + 1e-9, name

    # VGG's hot shard cannot be fixed by placement (one tensor holds
    # ~73% of the model), but AlexNet/Inception should not regress and
    # balanced models may gain.
    for name, (rr, greedy) in results.items():
        assert greedy <= rr * 1.05, name
