"""Figure 12: sender-side memory-copy overhead (zero-copy on vs off).

Paper claims: turning the graph-analysis zero-copy optimization off
costs up to ~21% at mini-batch 8, with small gains for Inception-v3
and GRU (compute-bound / many small tensors).
"""

from repro.harness import figure12


def test_figure12(regen):
    result = regen(figure12, iterations=3)

    gains = {row[0]: row[3] for row in result.rows}

    # Zero copy never meaningfully hurts (small negatives are
    # scheduling noise at this iteration count).
    for model, gain in gains.items():
        assert gain > -3.0, (model, gain)

    # A visible gain exists for the communication-bound models
    # (paper: up to 21% at batch 8).
    assert max(gains.values()) > 8.0
    assert max(gains.values()) < 35.0
    assert gains["VGGNet-16"] > 5.0

    # Inception-v3 benefits least (paper's second observation: it is
    # compute-bound and its tensors are small).
    weakest = sorted(gains, key=gains.get)[:2]
    assert "Inception-v3" in weakest
