"""Figure 10: convergence of the three real applications.

The paper's claims: Seq2Seq converges ~3x faster with RDMA than with
gRPC.TCP (and 53% faster than gRPC.RDMA); CIFAR ~2.6x over gRPC.TCP
(18% over gRPC.RDMA); SE ~85% faster than gRPC.TCP while gRPC.RDMA
cannot run it at all (TensorFlow crashes on the >1 GB tensor).
"""

from repro.harness import figure10


def test_figure10(regen):
    result = regen(figure10, steps=120, iterations=3)

    def final_minutes(app, mechanism):
        rows = result.find(app=app, mechanism=mechanism)
        assert rows, f"no curve for {app}/{mechanism}"
        return max(row[result.columns.index("minutes")] for row in rows)

    def metric_curve(app, mechanism):
        rows = result.find(app=app, mechanism=mechanism)
        return [row[result.columns.index("metric")] for row in rows]

    # Same steps take far less wall-clock under RDMA.
    for app in ("Seq2Seq", "CIFAR"):
        tcp = final_minutes(app, "gRPC.TCP")
        grpc_rdma = final_minutes(app, "gRPC.RDMA")
        rdma = final_minutes(app, "RDMA")
        assert rdma < grpc_rdma < tcp, app
        speedup_tcp = tcp / rdma
        assert speedup_tcp > 1.5, (app, speedup_tcp)

    # Seq2Seq gains more than CIFAR (3x vs 2.6x in the paper): the
    # translation model is far more communication-bound.
    assert (final_minutes("Seq2Seq", "gRPC.TCP")
            / final_minutes("Seq2Seq", "RDMA")
            > final_minutes("CIFAR", "gRPC.TCP")
            / final_minutes("CIFAR", "RDMA"))

    # SE: gRPC.RDMA crashed -> no rows; the others completed.
    assert result.find(app="SE", mechanism="gRPC.RDMA") == []
    assert result.find(app="SE", mechanism="RDMA")
    assert result.find(app="SE", mechanism="gRPC.TCP")
    assert any("SE/gRPC.RDMA crashed" in note for note in result.notes)

    # The metric actually converges (real SGD underneath).
    for app in ("Seq2Seq", "CIFAR", "SE"):
        curve = metric_curve(app, "RDMA") or metric_curve(app, "gRPC.TCP")
        assert curve[-1] < curve[0] * 0.95, app

    # Per-step metric values are mechanism-independent.
    s_tcp = metric_curve("CIFAR", "gRPC.TCP")
    s_rdma = metric_curve("CIFAR", "RDMA")
    assert s_tcp == s_rdma
