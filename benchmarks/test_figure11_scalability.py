"""Figure 11: scalability of LSTM / Inception-v3 / VGGNet-16.

Paper claims: compute-bound LSTM and Inception-v3 scale near-linearly
(>7x on 8 servers for RDMA); communication-bound VGGNet-16 reaches
~5.2x only with RDMA; with RDMA all three distributed runs beat the
single-server local baseline from 2 servers on, while gRPC.RDMA needs
4 (LSTM) or 8 (VGG) servers to break even.
"""

from repro.harness import figure11


def test_figure11(regen):
    result = regen(figure11, iterations=3)

    def speedup(model, mechanism, servers):
        return result.cell("speedup_vs_local", benchmark=model,
                           mechanism=mechanism, servers=servers)

    # Compute-bound models scale well on 8 servers with RDMA.
    assert speedup("LSTM", "RDMA", 8) > 4.0
    assert speedup("Inception-v3", "RDMA", 8) > 5.0
    # Communication-bound VGG scales, but worse.
    assert 2.0 < speedup("VGGNet-16", "RDMA", 8) < speedup("Inception-v3",
                                                           "RDMA", 8)

    # RDMA always scales at least as well as gRPC.RDMA, which beats TCP.
    for model in ("LSTM", "Inception-v3", "VGGNet-16"):
        for servers in (2, 4, 8):
            rdma = speedup(model, "RDMA", servers)
            grpc = speedup(model, "gRPC.RDMA", servers)
            tcp = speedup(model, "gRPC.TCP", servers)
            assert rdma >= grpc >= tcp, (model, servers)

    # Crossover vs the local baseline: RDMA breaks even by 2 servers
    # for every workload (paper: "with our RDMA, all the three
    # distributed benchmarks can outperform the local implementations
    # with only 2 servers").
    for model in ("LSTM", "Inception-v3", "VGGNet-16"):
        assert speedup(model, "RDMA", 2) > 1.0, model

    # gRPC.TCP cannot beat local for VGG even at 8 servers.
    assert speedup("VGGNet-16", "gRPC.TCP", 8) < 1.5

    # Throughput grows with server count under RDMA.
    for model in ("LSTM", "Inception-v3", "VGGNet-16"):
        series = [speedup(model, "RDMA", n) for n in (1, 2, 4, 8)]
        assert series == sorted(series), model
