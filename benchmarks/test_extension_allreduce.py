"""Extension: PS vs collective allreduce scalability (figure-11 style).

Not a paper figure: the paper trains exclusively through parameter
servers (2·M bytes per worker per step).  This extension runs the same
workloads over the collective-communication subsystem — ring and
recursive halving-doubling allreduce whose chunk transfers ride the
zero-copy static RDMA protocol — and checks:

* per-worker steady-state wire volume matches the analytic
  ``2·M·(N-1)/N`` bound within 5% (measured from the simnet transfer
  log, not predicted);
* at N>=4 workers on RDMA the bandwidth-optimal ring is no slower than
  the PS graph, because the PS inlinks stop being the bottleneck;
* RDMA collectives beat their gRPC.TCP counterparts at every scale.
"""

from repro.harness import extension_allreduce


def test_extension_allreduce(regen):
    result = regen(extension_allreduce,
                   models=("FCN-5",), server_counts=(2, 4, 8),
                   mechanisms=("RDMA", "gRPC.TCP"), iterations=3)

    def cell(column, **filters):
        return result.cell(column, benchmark="FCN-5", **filters)

    # Measured wire volume matches 2*M*(N-1)/N within 5% -- both
    # collectives, every scale, both transports (volume is a property
    # of the algorithm, not the wire).
    for strategy in ("ring", "halving-doubling"):
        for mechanism in ("RDMA", "gRPC.TCP"):
            for servers in (2, 4, 8):
                measured = cell("wire_mb_per_worker", strategy=strategy,
                                mechanism=mechanism, servers=servers)
                predicted = cell("predicted_wire_mb", strategy=strategy,
                                 mechanism=mechanism, servers=servers)
                assert predicted > 0
                assert abs(measured - predicted) / predicted < 0.05, (
                    strategy, mechanism, servers)

    # The collectives move strictly less than the PS graph's 2*M, and
    # the gap widens with N (ring volume approaches 2*M from below).
    ring_mb = [cell("wire_mb_per_worker", strategy="ring",
                    mechanism="RDMA", servers=n) for n in (2, 4, 8)]
    ps_mb = cell("wire_mb_per_worker", strategy="ps", mechanism="RDMA",
                 servers=4)
    assert ring_mb == sorted(ring_mb)
    assert all(mb < ps_mb for mb in ring_mb)

    def step(strategy, mechanism, servers):
        return cell("step_time_ms", strategy=strategy, mechanism=mechanism,
                    servers=servers)

    # Acceptance: ring no slower than PS at N>=4 on RDMA.
    for servers in (4, 8):
        assert step("ring", "RDMA", servers) <= step("ps", "RDMA", servers)

    # Halving-doubling finishes its exchange in 2*log2(N) rounds vs the
    # ring's 2*(N-1): at 8 workers it should not lose to the ring.
    assert step("halving-doubling", "RDMA", 8) <= step("ring", "RDMA", 8) * 1.05

    # Zero-copy RDMA beats TCP for every strategy and scale.
    for strategy in ("ps", "ring", "halving-doubling"):
        for servers in (2, 4, 8):
            assert (step(strategy, "RDMA", servers)
                    < step(strategy, "gRPC.TCP", servers)), (strategy, servers)

    # Collectives keep scaling throughput: aggregate minibatch rate on
    # RDMA grows with worker count and beats the local baseline by 4.
    local = result.cell("minibatches_per_s", benchmark="FCN-5",
                        strategy="local")
    rates = [cell("minibatches_per_s", strategy="ring", mechanism="RDMA",
                  servers=n) for n in (2, 4, 8)]
    assert rates == sorted(rates)
    assert rates[1] > local
