"""Ablation D1: flag-byte completion vs two-sided notification.

The paper's receiver detects transfer completion by polling a flag
byte at the tail of the preallocated region (§3.2) instead of using
two-sided verbs.  This ablation drives both designs over raw device
channels: (a) one-sided WRITE of payload+flag with receiver-side
polling; (b) one-sided WRITE of the payload followed by a SEND
notification consumed by a posted RECV.  The flag design avoids the
remote CPU's receive-path work and an extra message, so per-transfer
latency is lower — at the price of burning receiver cycles polling.
"""

import pytest

from repro.core import Direction, RdmaDevice, attach_address_book
from repro.simnet import Cluster, Endpoint, Opcode, WorkRequest
from repro.simnet.costmodel import MB


SIZES = (64 * 1024, 1 * MB, 16 * MB)
ROUNDS = 6


def _setup():
    cluster = Cluster(2)
    a, b = cluster.hosts
    dev_a = RdmaDevice.create(a, 4, 4, Endpoint(a.name, 7300))
    dev_b = RdmaDevice.create(b, 4, 4, Endpoint(b.name, 7300))
    return cluster, dev_a, dev_b


def run_flag_polling(size: int) -> float:
    """Total time for ROUNDS transfers with flag-byte completion."""
    cluster, dev_a, dev_b = _setup()
    src = dev_a.allocate_mem_region(size)
    dst = dev_b.allocate_mem_region(size + 1)
    channel = dev_a.get_channel(dev_b.endpoint, 1)
    cost = cluster.cost

    def receiver():
        for _ in range(ROUNDS):
            while dst.read_byte(size) != 1:
                yield cluster.sim.timeout(cost.poll_check + cost.idle_poll_interval)
            dst.write(b"\x00", offset=size)

    def sender():
        for _ in range(ROUNDS):
            channel.memcpy(local_addr=src.addr, local_region=src,
                           remote_addr=dst.addr, remote_region=dst.descriptor(),
                           size=size, direction=Direction.LOCAL_TO_REMOTE)
            done = channel.memcpy_event(
                local_addr=0, local_region=None,
                remote_addr=dst.addr + size, remote_region=dst.descriptor(),
                size=1, direction=Direction.LOCAL_TO_REMOTE,
                inline_data=b"\x01")
            yield done

    recv_proc = cluster.sim.spawn(receiver())
    cluster.sim.spawn(sender())
    cluster.sim.run_until_complete(recv_proc, limit=60.0)
    return cluster.sim.now


def run_send_notification(size: int) -> float:
    """Total time with a two-sided SEND notifying each completion."""
    cluster, dev_a, dev_b = _setup()
    src = dev_a.allocate_mem_region(size)
    dst = dev_b.allocate_mem_region(size)
    notify_slot = dev_b.allocate_mem_region(64, dense=True)
    channel_a = dev_a.get_channel(dev_b.endpoint, 1)
    channel_b = dev_b.get_channel(dev_a.endpoint, 1)

    def receiver():
        for _ in range(ROUNDS):
            got = cluster.sim.event()
            dev_b.post_recv(channel_b, notify_slot, got.succeed)
            yield got

    def sender():
        for _ in range(ROUNDS):
            done = channel_a.memcpy_event(
                local_addr=src.addr, local_region=src,
                remote_addr=dst.addr, remote_region=dst.descriptor(),
                size=size, direction=Direction.LOCAL_TO_REMOTE)
            yield done
            dev_a.post_send_message(channel_a, b"ready")

    recv_proc = cluster.sim.spawn(receiver())
    cluster.sim.spawn(sender())
    cluster.sim.run_until_complete(recv_proc, limit=60.0)
    return cluster.sim.now


def test_ablation_completion_mechanism(benchmark):
    results = benchmark.pedantic(
        lambda: {size: (run_flag_polling(size), run_send_notification(size))
                 for size in SIZES},
        rounds=1, iterations=1)
    print()
    print("== Ablation D1: completion detection ==")
    print(f"{'size':>12}  {'flag-poll ms':>14}  {'send-notify ms':>15}")
    for size, (flag, notify) in results.items():
        print(f"{size:>12}  {flag * 1e3:>14.4f}  {notify * 1e3:>15.4f}")
        # The flag design is never slower; the two-sided variant pays
        # the sender-side completion wait plus an extra message.
        assert flag <= notify * 1.02, size
    # For small transfers the relative gap is most visible.
    small_flag, small_notify = results[SIZES[0]]
    assert small_notify > small_flag
