"""Ablation D4: static placement vs always-dynamic transfer (§3.2-3.3).

The analyzer uses the static-placement protocol whenever shapes are
statically known, and falls back to the dynamic-allocation protocol
(metadata write + one-sided READ + per-batch allocation) only when it
must.  This ablation forces every edge through the dynamic protocol
and measures what the static fast path is worth per benchmark.
"""

from repro.core import RdmaCommRuntime
from repro.distributed import run_training_benchmark
from repro.models import get_model


MODELS = ("FCN-5", "Inception-v3", "LSTM")


def sweep():
    out = {}
    for name in MODELS:
        spec = get_model(name)
        static = run_training_benchmark(spec, "RDMA", num_servers=4,
                                        batch_size=8, iterations=3)
        dynamic = run_training_benchmark(
            spec, "RDMA(dyn)", num_servers=4, batch_size=8, iterations=3,
            comm=RdmaCommRuntime(force_dynamic=True))
        assert not static.crashed and not dynamic.crashed
        out[name] = (static.step_time, dynamic.step_time)
    return out


def test_ablation_dynamic_protocol(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Ablation D4: static placement vs always-dynamic ==")
    print(f"{'benchmark':>14}  {'static ms':>10}  {'dynamic ms':>11}  "
          f"{'overhead %':>10}")
    overheads = {}
    for name, (static, dynamic) in results.items():
        overhead = (dynamic - static) / static * 100
        overheads[name] = overhead
        print(f"{name:>14}  {static * 1e3:>10.2f}  {dynamic * 1e3:>11.2f}  "
              f"{overhead:>10.1f}")
        # Dynamic is never meaningfully faster: it adds metadata
        # exchange, a per-batch allocation, and an extra data round
        # trip (small inversions are pull-scheduling noise).
        assert dynamic >= static * 0.95, name
    # On average the static fast path wins.
    assert sum(overheads.values()) / len(overheads) > 0

    # Many-small-tensor models suffer the most per-transfer overhead.
    inc_overhead = (results["Inception-v3"][1] - results["Inception-v3"][0]) \
        / results["Inception-v3"][0]
    fcn_overhead = (results["FCN-5"][1] - results["FCN-5"][0]) \
        / results["FCN-5"][0]
    assert inc_overhead > fcn_overhead
