"""Ablation D5: CQ/QP configuration (§3.1, §5).

The paper configures 4 CQs per device and 4 QPs per peer, "a
sufficiently large number to achieve good parallelism" following Kalia
et al.'s guidelines.  In the simulated NIC, QPs impose FIFO ordering
on their verbs, so a single shared QP serializes unrelated transfers
(a large write delays a small one posted after it), while multiple QPs
let them land independently; beyond a few QPs the wire itself is the
bottleneck and more QPs stop mattering — the paper's "sufficiently
large" observation.
"""

from repro.core import RdmaCommRuntime
from repro.distributed import run_training_benchmark
from repro.models import get_model


def sweep_qps():
    spec = get_model("Inception-v3")  # many tensors -> ordering matters
    out = {}
    for qps in (1, 2, 4, 8):
        comm = RdmaCommRuntime(num_cqs=max(1, qps // 2),
                               num_qps_per_peer=qps)
        result = run_training_benchmark(spec, f"RDMA(qp={qps})",
                                        num_servers=4, batch_size=8,
                                        iterations=3, comm=comm)
        assert not result.crashed, result.crash_reason
        out[qps] = result.step_time
    return out


def test_ablation_qp_parallelism(benchmark):
    sweep = benchmark.pedantic(sweep_qps, rounds=1, iterations=1)
    print()
    print("== Ablation D5: QPs per peer (Inception-v3, 4 servers) ==")
    for qps, step in sweep.items():
        print(f"  {qps} QP(s): {step * 1e3:8.2f} ms/step")
    # One QP serializes unrelated transfers; more QPs help, then
    # plateau once the wire is the bottleneck.
    assert sweep[4] <= sweep[1] * 1.001
    gain_1_to_4 = sweep[1] - sweep[4]
    gain_4_to_8 = sweep[4] - sweep[8]
    assert gain_4_to_8 <= max(gain_1_to_4, 1e-9) + 1e-9
