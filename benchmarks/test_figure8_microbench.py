"""Figure 8: the send/receive micro-benchmark between two servers."""

from repro.harness import figure8
from repro.harness.experiments import KB, MB, GB


SIZES = (64 * KB, 1 * MB, 16 * MB, 256 * MB, 1 * GB)


def test_figure8(regen):
    result = regen(figure8, sizes=SIZES, iterations=3)

    def time_of(mechanism, size):
        return result.cell("transfer_ms", mechanism=mechanism,
                           message_bytes=size)

    for size in SIZES:
        rdma = time_of("RDMA", size)
        cp = time_of("RDMA.cp", size)
        grpc_rdma = time_of("gRPC.RDMA", size)
        grpc_tcp = time_of("gRPC.TCP", size)
        # The 1 GB gRPC.RDMA point is missing: TensorFlow crashes (§5.1).
        if size >= 1 * GB:
            assert grpc_rdma is None
        else:
            # Mechanism ordering of the figure.
            assert rdma < cp < grpc_rdma < grpc_tcp, f"size={size}"

    # Paper: RDMA.zerocp beats RDMA.cp by 1.2x-1.8x.
    for size in (1 * MB, 256 * MB):
        ratio = time_of("RDMA.cp", size) / time_of("RDMA", size)
        assert 1.1 < ratio < 2.3, f"size={size}: {ratio}"

    # Paper: 1.3x-14x over gRPC.RDMA across the size range.  (In this
    # reproduction the gap is driven by per-message overheads at small
    # sizes and per-byte serialization/copy at large sizes, so it is
    # large at both ends of the sweep.)
    for size in (64 * KB, 1 * MB, 256 * MB):
        gap = time_of("gRPC.RDMA", size) / time_of("RDMA", size)
        assert 1.3 < gap < 14, f"size={size}: {gap}"

    # Paper: 1.7x-61x over gRPC.TCP.
    for size in SIZES:
        gap = time_of("gRPC.TCP", size) / time_of("RDMA", size)
        assert 1.7 < gap < 61, f"size={size}: {gap}"

    # Near the wire limit at 1 GB: ~100 Gbps for zero-copy RDMA.
    gbps = result.cell("throughput_gbps", mechanism="RDMA",
                       message_bytes=1 * GB)
    assert gbps > 90
