"""Table 3: GPUDirect RDMA improvements at 8 workers, batch 32.

Paper: enabling GPUDirect improves AlexNet 32%, FCN-5 54%, VGG 13%,
Inception-v3 0.4%, LSTM 24%, GRU 19%.
"""

from repro.harness import table3


PAPER_IMPROVEMENT = {
    "AlexNet": 32.0,
    "FCN-5": 54.0,
    "VGGNet-16": 13.0,
    "Inception-v3": 0.4,
    "LSTM": 24.0,
    "GRU": 19.0,
}


def test_table3(regen):
    result = regen(table3, iterations=3)
    improvements = {row[0]: row[3] for row in result.rows}

    # GDR helps the communication-bound models substantially.
    assert improvements["AlexNet"] > 10
    assert improvements["FCN-5"] > 10
    assert improvements["VGGNet-16"] > 10
    # Inception-v3 gains the least (paper: 0.4%, i.e. a wash — the
    # dynamic-allocation protocol GDR mandates costs about what the
    # PCIe staging saves for its many small tensors).
    assert min(improvements, key=improvements.get) == "Inception-v3"
    assert improvements["Inception-v3"] < 5
    assert improvements["Inception-v3"] > -15
    # Nothing else loses from GDR.
    for model, gain in improvements.items():
        if model != "Inception-v3":
            assert gain >= -1.0, model

    # Absolute magnitudes in the paper's range (tens to hundreds of
    # ms; VGG lands within a few percent of the paper's 690.1 ms).
    for row in result.rows:
        assert 10 < row[1] < 2000
    vgg = result.cell("rdma_ms", benchmark="VGGNet-16")
    assert 400 < vgg < 1000
