"""Extension: the RDMA mechanism on RoCE instead of InfiniBand.

§5 notes that unlike TensorFlow's IB-only verbs integration, the
paper's mechanism "can also work with RoCE network adapters".  This
extension runs the same zero-copy machinery on a RoCE v2 / 25 GbE
cost model: everything works unchanged, throughput degrades roughly
with the wire, and the zero-copy advantage over gRPC persists on the
slower fabric.
"""

from repro.distributed import run_training_benchmark
from repro.models import get_model
from repro.simnet.costmodel import INFINIBAND_COST_MODEL, ROCE_COST_MODEL


def sweep():
    spec = get_model("FCN-5")
    out = {}
    for label, cost in (("IB", INFINIBAND_COST_MODEL),
                        ("RoCE", ROCE_COST_MODEL)):
        for mechanism in ("RDMA", "gRPC.RDMA"):
            out[f"{mechanism}/{label}"] = run_training_benchmark(
                spec, mechanism, num_servers=4, batch_size=16,
                iterations=3, cost=cost)
    return out


def test_extension_roce(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Extension: InfiniBand vs RoCE (FCN-5, 4 servers, b=16) ==")
    for name, result in results.items():
        assert not result.crashed, (name, result.crash_reason)
        print(f"  {name:>14}: {result.step_time * 1e3:8.2f} ms/step")

    ib = results["RDMA/IB"].step_time
    roce = results["RDMA/RoCE"].step_time
    # The 4x slower wire costs real time, bounded by the wire ratio
    # (compute and protocol overheads dilute it below 4x).
    assert 1.5 < roce / ib < 4.5
    # The zero-copy advantage survives the fabric change: RDMA beats
    # gRPC.RDMA on RoCE just as it does on InfiniBand.
    assert (results["RDMA/RoCE"].step_time
            < results["gRPC.RDMA/RoCE"].step_time)
    assert (results["RDMA/IB"].step_time
            < results["gRPC.RDMA/IB"].step_time)
