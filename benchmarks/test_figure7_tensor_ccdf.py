"""Figure 7: complementary CDF of variable tensor sizes."""

from repro.harness import figure7


def test_figure7(regen):
    result = regen(figure7)
    frac_over_10kb = result.cell("fraction_of_tensors_larger",
                                 size_threshold_bytes=10 * 1024)
    frac_over_1mb = result.cell("fraction_of_tensors_larger",
                                size_threshold_bytes=1024 * 1024)
    capacity_over_1mb = result.cell("fraction_of_capacity_in_larger",
                                    size_threshold_bytes=1024 * 1024)
    # The paper's three headline observations about the distribution.
    assert frac_over_10kb > 0.50
    assert frac_over_1mb >= 0.20
    assert capacity_over_1mb > 0.94

    # CCDF must be non-increasing in the threshold.
    fractions = result.column("fraction_of_tensors_larger")
    assert fractions == sorted(fractions, reverse=True)
