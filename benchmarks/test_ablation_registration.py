"""Ablation D3: one registered arena vs per-tensor registration (§3.4).

The paper pre-allocates one large buffer and registers it with the NIC
once, because per-tensor registration (a) pays the kernel page-pinning
cost on every tensor and (b) exhausts the NIC's bounded MR table.
This ablation quantifies (a) with the cost model over real model
inventories and demonstrates (b) as an actual hardware-cap failure.
"""

import pytest

from repro.models import all_models
from repro.simnet import Cluster, CostModel, MemoryError_


def registration_costs():
    """(arena_seconds, per_tensor_seconds, ratio) for each benchmark."""
    cost = CostModel()
    out = {}
    for name, spec in all_models().items():
        arena = cost.mr_register_time(2 * spec.model_bytes)
        per_tensor = sum(cost.mr_register_time(v.nbytes)
                         for v in spec.variables)
        # Per-tensor registration happens per iteration (tensors are
        # reallocated each mini-batch); the arena registers once.
        out[name] = (arena, per_tensor)
    return out


def test_ablation_registration(benchmark):
    costs = benchmark.pedantic(registration_costs, rounds=1, iterations=1)
    print()
    print("== Ablation D3: memory registration strategy ==")
    print(f"{'benchmark':>14}  {'arena once (ms)':>16}  "
          f"{'per-tensor/iter (ms)':>21}")
    for name, (arena, per_tensor) in costs.items():
        print(f"{name:>14}  {arena * 1e3:>16.2f}  {per_tensor * 1e3:>21.2f}")

    # Per-tensor registration pays the fixed pinning cost per variable:
    # for many-tensor models the *recurring* cost rivals the arena's
    # one-time cost every single iteration.
    inception_arena, inception_per_tensor = costs["Inception-v3"]
    assert inception_per_tensor > 0.4 * inception_arena

    # The MR-table hardware cap: registering every tensor of every
    # benchmark replica exhausts a realistic NIC (the error the paper
    # warns about), while one arena per process never can.
    cluster = Cluster(1, cost=CostModel(mr_table_capacity=256))
    host = cluster.hosts[0]
    with pytest.raises(MemoryError_, match="exhausted"):
        for _replica in range(2):
            for spec in all_models().values():
                for variable in spec.variables:
                    buf = host.allocate(max(variable.nbytes, 1))
                    host.nic.register_memory(buf)
