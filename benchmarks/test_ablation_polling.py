"""Ablation D2: the polling-async executor mode (§4).

The paper introduces *polling-async* so RdmaRecv's flag polling
neither busy-spins (wasting the processor) nor sleeps on a timer
(adding latency).  This ablation sweeps the executor's idle-poll
backoff: a sleep-poll design (long fixed sleeps) inflates step time on
a communication-bound workload, while the paper's re-enqueue-at-tail
scheme keeps detection latency near the ready-queue churn rate.
"""

import dataclasses

from repro.distributed import run_training_benchmark
from repro.models import get_model
from repro.simnet.costmodel import DEFAULT_COST_MODEL


def step_time_with_idle_interval(multiplier: float) -> float:
    cost = DEFAULT_COST_MODEL.scaled(idle_poll_interval=multiplier)
    spec = get_model("FCN-5")
    result = run_training_benchmark(spec, "RDMA", num_servers=4,
                                    batch_size=8, iterations=3, cost=cost)
    assert not result.crashed, result.crash_reason
    return result.step_time


def test_ablation_polling_strategy(benchmark):
    # idle_poll_interval multipliers: 1x = the tuned polling-async
    # backoff; 250x ~= a 0.5 ms sleep-poll; 2500x ~= a 5 ms sleep-poll.
    sweep = benchmark.pedantic(
        lambda: {m: step_time_with_idle_interval(m)
                 for m in (1.0, 250.0, 2500.0)},
        rounds=1, iterations=1)
    print()
    print("== Ablation D2: receiver polling strategy (FCN-5, 4 servers) ==")
    for multiplier, step in sweep.items():
        label = {1.0: "polling-async (paper)", 250.0: "sleep-poll 0.5ms",
                 2500.0: "sleep-poll 5ms"}[multiplier]
        print(f"  {label:>22}: {step * 1e3:8.2f} ms/step")
    # The tuned backoff is at least as good as a 0.5 ms sleep-poll
    # (within noise: the adaptive backoff caps at 0.5 ms anyway) and
    # clearly better than a coarse 5 ms sleep-poll.
    assert sweep[1.0] <= sweep[250.0] * 1.01
    assert sweep[2500.0] > sweep[1.0] * 1.05
    assert sweep[2500.0] > sweep[250.0]
