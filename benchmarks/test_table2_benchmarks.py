"""Table 2: benchmark characteristics (model size, #variables, time)."""

from repro.harness import table2


PAPER_TABLE2 = {
    # benchmark: (size MB, variable tensor count, sample time ms)
    "AlexNet": (176.42, 16, 7.61),
    "Inception-v3": (92.90, 196, 68.32),
    "VGGNet-16": (512.32, 32, 30.92),
    "LSTM": (35.93, 14, 33.33),
    "GRU": (27.92, 11, 30.44),
    "FCN-5": (204.47, 10, 4.88),
}


def test_table2(regen):
    result = regen(table2)
    for benchmark, (size_mb, count, ms) in PAPER_TABLE2.items():
        row_size = result.cell("model_size_mb", benchmark=benchmark)
        row_count = result.cell("variable_tensors", benchmark=benchmark)
        row_ms = result.cell("sample_time_ms", benchmark=benchmark)
        assert abs(row_size - size_mb) / size_mb < 0.005, benchmark
        assert row_count == count, benchmark
        assert abs(row_ms - ms) < 0.01, benchmark
